#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "data/movielens.h"
#include "data/office_home.h"

namespace mocograd {
namespace {

harness::TrainConfig FastConfig() {
  harness::TrainConfig cfg;
  cfg.steps = 30;
  cfg.batch_size = 16;
  cfg.lr = 1e-2f;
  cfg.seed = 5;
  return cfg;
}

data::MovieLensConfig SmallMl() {
  data::MovieLensConfig dc;
  dc.num_genres = 3;
  dc.train_per_task = 120;
  dc.test_per_task = 60;
  return dc;
}

TEST(TaskOutputDimsTest, PerKindWidths) {
  data::MovieLensSim ml(SmallMl());
  auto dims = harness::TaskOutputDims(ml, {0, 2});
  EXPECT_EQ(dims, (std::vector<int64_t>{1, 1}));

  data::OfficeHomeConfig oc;
  oc.num_classes = 7;
  oc.train_per_class_per_domain = 2;
  oc.test_per_class_per_domain = 2;
  data::OfficeHomeSim oh(oc);
  auto cls_dims = harness::TaskOutputDims(oh, {0, 1, 2, 3});
  EXPECT_EQ(cls_dims, (std::vector<int64_t>{7, 7, 7, 7}));
}

TEST(HigherIsBetterTest, MetricDirections) {
  EXPECT_TRUE(harness::HigherIsBetter("auc"));
  EXPECT_TRUE(harness::HigherIsBetter("acc"));
  EXPECT_TRUE(harness::HigherIsBetter("miou"));
  EXPECT_TRUE(harness::HigherIsBetter("pixacc"));
  EXPECT_TRUE(harness::HigherIsBetter("within_11.25"));
  EXPECT_FALSE(harness::HigherIsBetter("rmse"));
  EXPECT_FALSE(harness::HigherIsBetter("mae"));
  EXPECT_FALSE(harness::HigherIsBetter("abs_err"));
  EXPECT_FALSE(harness::HigherIsBetter("normal_mean"));
}

TEST(RunMethodTest, ProducesMetricsAndRisks) {
  data::MovieLensSim ml(SmallMl());
  auto factory = harness::MlpHpsFactory(ml.input_dim(), {16});
  auto r = harness::RunMethod(ml, {0, 1}, "mocograd", factory, FastConfig());
  ASSERT_EQ(r.task_metrics.size(), 2u);
  EXPECT_EQ(r.task_metrics[0][0].name, "rmse");
  EXPECT_GT(r.task_metrics[0][0].value, 0.0);
  EXPECT_EQ(r.test_risks.size(), 2u);
  EXPECT_EQ(r.final_losses.size(), 2u);
  EXPECT_GE(r.mean_gcd, 0.0);
  EXPECT_GT(r.mean_backward_seconds, 0.0);
}

TEST(RunMethodTest, DeterministicGivenSeed) {
  data::MovieLensSim ml(SmallMl());
  auto factory = harness::MlpHpsFactory(ml.input_dim(), {16});
  auto a = harness::RunMethod(ml, {0, 1}, "pcgrad", factory, FastConfig());
  auto b = harness::RunMethod(ml, {0, 1}, "pcgrad", factory, FastConfig());
  EXPECT_DOUBLE_EQ(a.task_metrics[0][0].value, b.task_metrics[0][0].value);
  EXPECT_DOUBLE_EQ(a.mean_gcd, b.mean_gcd);
}

TEST(RunMethodTest, TaskSubsetSelection) {
  data::MovieLensSim ml(SmallMl());
  auto factory = harness::MlpHpsFactory(ml.input_dim(), {16});
  auto r = harness::RunMethod(ml, {2}, "ew", factory, FastConfig());
  EXPECT_EQ(r.task_metrics.size(), 1u);
}

TEST(RunMethodTest, LossCurveRecording) {
  data::MovieLensSim ml(SmallMl());
  auto factory = harness::MlpHpsFactory(ml.input_dim(), {16});
  harness::TrainConfig cfg = FastConfig();
  cfg.loss_curve_every = 10;
  auto r = harness::RunMethod(ml, {0, 1}, "ew", factory, cfg);
  EXPECT_EQ(r.loss_curve.size(), 3u);  // steps 0, 10, 20
  EXPECT_EQ(r.loss_curve[0].size(), 2u);
}

TEST(StlBaselineTest, OneModelPerTask) {
  data::MovieLensSim ml(SmallMl());
  auto factory = harness::MlpHpsFactory(ml.input_dim(), {16});
  auto stl = harness::StlBaseline(ml, {0, 1, 2}, factory, FastConfig());
  EXPECT_EQ(stl.task_metrics.size(), 3u);
  // Single-task runs have no gradient conflicts by construction.
  EXPECT_DOUBLE_EQ(stl.mean_gcd, 0.0);
}

TEST(ComputeDeltaMTest, SignsAndMagnitude) {
  harness::TaskMetrics better_auc = {{"auc", 0.88}};
  harness::TaskMetrics base_auc = {{"auc", 0.80}};
  harness::TaskMetrics worse_rmse = {{"rmse", 1.1}};
  harness::TaskMetrics base_rmse = {{"rmse", 1.0}};
  const double dm = harness::ComputeDeltaM({better_auc, worse_rmse},
                                           {base_auc, base_rmse});
  EXPECT_NEAR(dm, (0.08 / 0.80 - 0.1) / 2.0, 1e-9);
}

TEST(ArchitectureFactoryTest, BuildsAllFiveArchitectures) {
  Rng rng(3);
  for (const std::string& arch : harness::AllArchitectureNames()) {
    auto factory = harness::ArchitectureFactory(arch, 8);
    auto model = factory({1, 2}, rng);
    EXPECT_EQ(model->num_tasks(), 2) << arch;
    EXPECT_FALSE(model->SharedParameters().empty()) << arch;
    // Forward smoke test.
    Tensor x = Tensor::Randn({3, 8}, rng);
    auto outs = model->Forward(
        {autograd::Variable(x, false), autograd::Variable(x, false)});
    EXPECT_EQ(outs[0].shape(), (Shape{3, 1})) << arch;
    EXPECT_EQ(outs[1].shape(), (Shape{3, 2})) << arch;
  }
  EXPECT_EQ(harness::AllArchitectureNames().size(), 5u);
}

}  // namespace
}  // namespace mocograd
