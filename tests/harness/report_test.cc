#include "harness/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace mocograd {
namespace {

harness::RunResult FakeResult(double auc, double rmse) {
  harness::RunResult r;
  r.task_metrics = {{{"auc", auc}}, {{"rmse", rmse}}};
  r.mean_gcd = 0.97;
  r.mean_backward_seconds = 0.001;
  return r;
}

TEST(ReportTest, CsvContainsAllRows) {
  std::vector<harness::LabeledRun> runs = {
      {"mocograd", FakeResult(0.9, 1.0)},
      {"ew", FakeResult(0.85, 1.1)},
  };
  const std::string csv = harness::RunsToCsv(runs);
  EXPECT_NE(csv.find("label,task,metric,value,higher_is_better"),
            std::string::npos);
  EXPECT_NE(csv.find("mocograd,0,auc,0.9,1"), std::string::npos);
  EXPECT_NE(csv.find("ew,1,rmse,1.1,0"), std::string::npos);
  EXPECT_NE(csv.find("mocograd,-,mean_gcd,0.97,0"), std::string::npos);
  // No baseline → no delta_m rows.
  EXPECT_EQ(csv.find("delta_m"), std::string::npos);
}

TEST(ReportTest, PhaseRowsOmittedWhenStepsNeverTimed) {
  std::vector<harness::LabeledRun> runs = {{"ew", FakeResult(0.8, 1.0)}};
  const std::string csv = harness::RunsToCsv(runs);
  EXPECT_EQ(csv.find("phase_"), std::string::npos);
}

TEST(ReportTest, PhaseSummaryRows) {
  harness::RunResult r = FakeResult(0.9, 1.0);
  r.mean_phase.forward = 0.25;
  r.mean_phase.backward = 0.5;
  r.mean_phase.aggregate = 0.125;
  r.mean_phase.aggregator.Add("gram", 0.0625);
  r.mean_phase.aggregator.Add("solver", 0.03125);
  std::vector<harness::LabeledRun> runs = {{"mocograd", r}};
  const std::string csv = harness::RunsToCsv(runs);
  EXPECT_NE(csv.find("mocograd,-,phase_forward_seconds,0.25,0"),
            std::string::npos);
  EXPECT_NE(csv.find("mocograd,-,phase_backward_seconds,0.5,0"),
            std::string::npos);
  EXPECT_NE(csv.find("mocograd,-,phase_aggregate_seconds,0.125,0"),
            std::string::npos);
  // Zero buckets still get rows once the step was timed...
  EXPECT_NE(csv.find("mocograd,-,phase_optimizer_seconds,0,0"),
            std::string::npos);
  // ...and aggregator sub-phases appear under phase_agg_<name>_seconds.
  EXPECT_NE(csv.find("mocograd,-,phase_agg_gram_seconds,0.0625,0"),
            std::string::npos);
  EXPECT_NE(csv.find("mocograd,-,phase_agg_solver_seconds,0.03125,0"),
            std::string::npos);
}

TEST(ReportTest, DeltaMRowsWithBaseline) {
  harness::RunResult stl = FakeResult(0.8, 1.0);
  std::vector<harness::LabeledRun> runs = {{"mocograd", FakeResult(0.88, 0.9)}};
  const std::string csv = harness::RunsToCsv(runs, &stl);
  EXPECT_NE(csv.find("mocograd,-,delta_m,0.1,1"), std::string::npos);
}

TEST(ReportTest, WritesFile) {
  const std::string path =
      std::string(::testing::TempDir()) + "/report.csv";
  std::vector<harness::LabeledRun> runs = {{"ew", FakeResult(0.8, 1.0)}};
  ASSERT_TRUE(harness::WriteCsvReport(runs, path).ok());
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "label,task,metric,value,higher_is_better");
  std::remove(path.c_str());
}

TEST(ReportTest, UnwritablePathFails) {
  std::vector<harness::LabeledRun> runs = {{"ew", FakeResult(0.8, 1.0)}};
  auto s = harness::WriteCsvReport(runs, "/nonexistent_dir_xyz/report.csv");
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace mocograd
