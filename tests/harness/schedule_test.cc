#include <gtest/gtest.h>

#include "data/movielens.h"
#include "harness/experiment.h"

namespace mocograd {
namespace {

data::MovieLensConfig SmallMl() {
  data::MovieLensConfig dc;
  dc.num_genres = 2;
  dc.train_per_task = 120;
  dc.test_per_task = 60;
  return dc;
}

TEST(HarnessScheduleTest, AllSchedulesRunAndLearn) {
  data::MovieLensSim ml(SmallMl());
  auto factory = harness::MlpHpsFactory(ml.input_dim(), {16});
  for (const std::string& sched :
       {std::string("constant"), std::string("cosine"),
        std::string("invsqrt"), std::string("step")}) {
    harness::TrainConfig cfg;
    cfg.steps = 60;
    cfg.batch_size = 16;
    cfg.lr = 1e-2f;
    cfg.seed = 3;
    cfg.lr_schedule = sched;
    auto r = harness::RunMethod(ml, {0, 1}, "mocograd", factory, cfg);
    EXPECT_GT(r.task_metrics[0][0].value, 0.0) << sched;
    EXPECT_LT(r.task_metrics[0][0].value, 3.0) << sched;
  }
}

TEST(HarnessScheduleTest, ScheduleChangesTheResult) {
  data::MovieLensSim ml(SmallMl());
  auto factory = harness::MlpHpsFactory(ml.input_dim(), {16});
  harness::TrainConfig cfg;
  cfg.steps = 60;
  cfg.batch_size = 16;
  cfg.lr = 1e-2f;
  cfg.seed = 3;
  auto constant = harness::RunMethod(ml, {0, 1}, "ew", factory, cfg);
  cfg.lr_schedule = "invsqrt";
  auto decayed = harness::RunMethod(ml, {0, 1}, "ew", factory, cfg);
  EXPECT_NE(constant.task_metrics[0][0].value,
            decayed.task_metrics[0][0].value);
}

TEST(HarnessScheduleDeathTest, UnknownScheduleAborts) {
  data::MovieLensSim ml(SmallMl());
  auto factory = harness::MlpHpsFactory(ml.input_dim(), {16});
  harness::TrainConfig cfg;
  cfg.steps = 5;
  cfg.lr_schedule = "warmup";  // not implemented
  EXPECT_DEATH(harness::RunMethod(ml, {0, 1}, "ew", factory, cfg),
               "unknown lr_schedule");
}

}  // namespace
}  // namespace mocograd
