// End-to-end integration tests: full training runs over each workload
// simulator through the harness, checking that the system learns (beats
// chance / improves with training) and that the core claims hold in
// miniature.

#include <gtest/gtest.h>

#include "data/aliexpress.h"
#include "data/movielens.h"
#include "data/office_home.h"
#include "data/qm9.h"
#include "data/scene.h"
#include "harness/experiment.h"

namespace mocograd {
namespace {

TEST(EndToEndTest, MovieLensAllMethodsLearn) {
  data::MovieLensConfig dc;
  dc.num_genres = 3;
  dc.train_per_task = 300;
  dc.test_per_task = 150;
  data::MovieLensSim ds(dc);
  auto factory = harness::MlpHpsFactory(ds.input_dim(), {32});
  harness::TrainConfig cfg;
  cfg.steps = 300;
  cfg.batch_size = 32;
  cfg.lr = 5e-3f;
  cfg.seed = 1;

  // Predicting the global mean rating gives RMSE ≈ std of ratings; every
  // method must clearly beat that.
  const auto test = ds.TestBatches();
  double mean = 0.0, var = 0.0;
  for (int64_t i = 0; i < test[0].y.NumElements(); ++i) mean += test[0].y[i];
  mean /= test[0].y.NumElements();
  for (int64_t i = 0; i < test[0].y.NumElements(); ++i) {
    var += (test[0].y[i] - mean) * (test[0].y[i] - mean);
  }
  const double chance_rmse = std::sqrt(var / test[0].y.NumElements());

  for (const std::string& method : core::AllMethodNames()) {
    auto r = harness::RunMethod(ds, {0, 1, 2}, method, factory, cfg);
    EXPECT_LT(r.task_metrics[0][0].value, chance_rmse)
        << method << " failed to beat mean prediction";
  }
}

TEST(EndToEndTest, AliExpressAucAboveChance) {
  data::AliExpressConfig dc;
  dc.num_train = 1500;
  dc.num_test = 800;
  data::AliExpressSim ds(dc);
  auto factory = harness::EmbeddingHpsFactory(dc.dense_dim,
                                              dc.num_user_segments,
                                              dc.num_item_categories);
  harness::TrainConfig cfg;
  cfg.steps = 150;
  cfg.batch_size = 64;
  cfg.lr = 3e-3f;
  cfg.seed = 2;
  auto r = harness::RunMethod(ds, {0, 1}, "mocograd", factory, cfg);
  EXPECT_GT(r.task_metrics[0][0].value, 0.75) << "CTR AUC";
  EXPECT_GT(r.task_metrics[1][0].value, 0.55) << "CTCVR AUC";
}

TEST(EndToEndTest, Qm9TrainingReducesMae) {
  data::Qm9Config qc;
  qc.num_properties = 4;
  qc.train_per_task = 300;
  qc.test_per_task = 100;
  data::Qm9Sim ds(qc);
  auto factory = harness::MlpHpsFactory(ds.input_dim(), {32});
  harness::TrainConfig cfg;
  cfg.batch_size = 32;
  cfg.lr = 3e-3f;
  cfg.seed = 3;

  cfg.steps = 5;
  auto early = harness::RunMethod(ds, {0, 1, 2, 3}, "mocograd", factory, cfg);
  cfg.steps = 200;
  auto late = harness::RunMethod(ds, {0, 1, 2, 3}, "mocograd", factory, cfg);
  double early_mae = 0, late_mae = 0;
  for (int t = 0; t < 4; ++t) {
    early_mae += early.task_metrics[t][0].value;
    late_mae += late.task_metrics[t][0].value;
  }
  EXPECT_LT(late_mae, early_mae * 0.8);
}

TEST(EndToEndTest, OfficeHomeBeatsChanceAccuracy) {
  data::OfficeHomeConfig oc;
  oc.num_classes = 15;
  oc.train_per_class_per_domain = 6;
  oc.test_per_class_per_domain = 3;
  data::OfficeHomeSim ds(oc);
  auto factory = harness::MlpHpsFactory(ds.input_dim(), {48, 32});
  harness::TrainConfig cfg;
  cfg.steps = 200;
  cfg.batch_size = 32;
  cfg.lr = 3e-3f;
  cfg.seed = 4;
  auto r = harness::RunMethod(ds, {0, 1, 2, 3}, "mocograd", factory, cfg);
  for (int t = 0; t < 4; ++t) {
    EXPECT_GT(r.task_metrics[t][0].value, 3.0 / 15.0)
        << "domain " << t << " accuracy below 3x chance";
  }
}

TEST(EndToEndTest, SceneConvTrainingWorks) {
  data::SceneConfig sc;
  sc.mode = data::SceneMode::kNyu;
  sc.num_train = 32;
  sc.num_test = 16;
  sc.hw = 12;
  data::SceneSim ds(sc);
  auto factory = harness::SceneConvFactory(3, 8, 2);
  harness::TrainConfig cfg;
  cfg.steps = 60;
  cfg.batch_size = 4;
  cfg.lr = 3e-3f;
  cfg.seed = 5;
  auto r = harness::RunMethod(ds, {0, 1, 2}, "mocograd", factory, cfg);
  // Segmentation beats the majority-class-ish floor; depth error bounded.
  EXPECT_GT(r.task_metrics[0][1].value, 0.5) << "pixacc";
  EXPECT_LT(r.task_metrics[1][0].value, 1.0) << "depth abs err (scaled)";
  // Normal predictions beat the 90° random-direction baseline.
  EXPECT_LT(r.task_metrics[2][0].value, 60.0) << "normal mean angle";
}

TEST(EndToEndTest, MocogradBeatsEwOnNoisyMovieLens) {
  // The headline claim in miniature: on the noisy-regression workload the
  // momentum-calibrated surgery outperforms plain joint training. Averaged
  // over seeds to be robust.
  data::MovieLensConfig dc;
  dc.num_genres = 6;
  dc.train_per_task = 800;
  dc.test_per_task = 400;
  data::MovieLensSim ds(dc);
  auto factory = harness::MlpHpsFactory(ds.input_dim(), {64, 32});
  std::vector<int> tasks = {0, 1, 2, 3, 4, 5};

  double ew_rmse = 0, moco_rmse = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    harness::TrainConfig cfg;
    cfg.steps = 250;
    cfg.batch_size = 32;
    cfg.lr = 3e-3f;
    cfg.seed = seed;
    auto ew = harness::RunMethod(ds, tasks, "ew", factory, cfg);
    auto moco = harness::RunMethod(ds, tasks, "mocograd", factory, cfg);
    for (int t = 0; t < 6; ++t) {
      ew_rmse += ew.task_metrics[t][0].value;
      moco_rmse += moco.task_metrics[t][0].value;
    }
  }
  EXPECT_LT(moco_rmse, ew_rmse);
}

}  // namespace
}  // namespace mocograd
