// Odds-and-ends coverage: statistical properties of the simulators and a
// few behaviors not pinned down elsewhere.

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "data/qm9.h"
#include "eval/metrics.h"
#include "mtl/mmoe.h"
#include "optim/optimizer.h"

namespace mocograd {
namespace {

using autograd::Variable;
namespace ag = autograd;

TEST(Qm9StatisticsTest, ScaleOnlyNormalizationUnitVariance) {
  data::Qm9Config cfg;
  cfg.num_properties = 4;
  cfg.train_per_task = 2000;
  cfg.test_per_task = 100;
  data::Qm9Sim ds(cfg);
  // Train-split std must be ≈ 1 per property after scale-only
  // normalization; the mean stays away from zero.
  Rng rng(1);
  auto batches = ds.SampleTrainBatches(2000, rng);
  for (int p = 0; p < 4; ++p) {
    double mean = 0.0, var = 0.0;
    const Tensor& y = batches[p].y;
    for (int64_t i = 0; i < y.NumElements(); ++i) mean += y[i];
    mean /= y.NumElements();
    for (int64_t i = 0; i < y.NumElements(); ++i) {
      var += (y[i] - mean) * (y[i] - mean);
    }
    var /= y.NumElements();
    EXPECT_NEAR(std::sqrt(var), 1.0, 0.15) << "property " << p;
    EXPECT_GT(std::fabs(mean), 0.8) << "property " << p;
  }
}

TEST(AucStatisticalTest, MatchesPairwiseExpectation) {
  // AUC of noisy scores: estimate by brute-force pair counting and compare
  // against the rank-based implementation.
  Rng rng(2);
  const int n = 300;
  Tensor scores(Shape{n});
  Tensor labels(Shape{n});
  for (int i = 0; i < n; ++i) {
    labels[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
    scores[i] = labels[i] * 1.0f + rng.Normal(0.0f, 1.5f);
  }
  double wins = 0, pairs = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (labels[i] > 0.5f && labels[j] < 0.5f) {
        pairs += 1;
        if (scores[i] > scores[j]) {
          wins += 1;
        } else if (scores[i] == scores[j]) {
          wins += 0.5;
        }
      }
    }
  }
  EXPECT_NEAR(eval::Auc(scores, labels), wins / pairs, 1e-9);
}

TEST(MmoeGateTest, GateActuallyRoutesExperts) {
  // Force one gate logit to dominate: the output must match the single
  // expert's head path (gate ≈ one-hot).
  Rng rng(3);
  mtl::MmoeConfig cfg;
  cfg.input_dim = 4;
  cfg.num_experts = 3;
  cfg.expert_dims = {5};
  cfg.task_output_dims = {2};
  mtl::MmoeModel model(cfg, rng);
  // Gate of task 0 is the first registered task param (Linear W then b).
  auto task_params = model.TaskParameters(0);
  Tensor& gate_w = task_params[0]->mutable_value();  // [4, 3]
  Tensor& gate_b = task_params[1]->mutable_value();  // [3]
  gate_w.Fill(0.0f);
  gate_b.Fill(0.0f);
  gate_b[1] = 50.0f;  // expert 1 wins by a mile

  Tensor x = Tensor::Randn({2, 4}, rng);
  auto out = model.Forward({Variable(x, false)});
  // Recompute manually through expert 1 + head.
  auto shared = model.SharedParameters();  // 3 experts x (W, b)
  Variable z = ag::Relu(ag::Add(
      ag::MatMul(Variable(x, false), *shared[2]), *shared[3]));
  Variable head_out =
      ag::Add(ag::MatMul(z, *task_params[2]), *task_params[3]);
  for (int64_t i = 0; i < head_out.NumElements(); ++i) {
    EXPECT_NEAR(out[0].value()[i], head_out.value()[i], 1e-4);
  }
}

TEST(AdagradFormulaTest, MatchesHandComputedSteps) {
  Variable x(Tensor::FromVector({1}, {0.0f}), true);
  optim::Adagrad opt({&x}, /*lr=*/1.0f, /*eps=*/0.0f);
  // Step 1: grad 2 → accum 4 → update 1*2/2 = 1.
  x.mutable_grad()[0] = 2.0f;
  opt.Step();
  EXPECT_NEAR(x.value()[0], -1.0f, 1e-6);
  // Step 2: grad 2 → accum 8 → update 2/sqrt(8).
  x.ZeroGrad();
  x.mutable_grad()[0] = 2.0f;
  opt.Step();
  EXPECT_NEAR(x.value()[0], -1.0f - 2.0f / std::sqrt(8.0f), 1e-6);
}

TEST(VariableGraphTest, LongChainBackwardIsLinearAndCorrect) {
  // 200-deep chain: y = (((x+1)+1)...+1); dy/dx = 1, value = x + 200.
  Variable x(Tensor::FromVector({1}, {1.0f}), true);
  Variable cur = x;
  for (int i = 0; i < 200; ++i) cur = ag::AddScalar(cur, 1.0f);
  EXPECT_FLOAT_EQ(cur.value()[0], 201.0f);
  cur.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
}

TEST(VariableGraphTest, WideFanOutAccumulates) {
  // y = Σ_{i=1..50} (i · x): dy/dx = Σ i = 1275.
  Variable x(Tensor::FromVector({1}, {2.0f}), true);
  Variable sum;
  for (int i = 1; i <= 50; ++i) {
    Variable term = ag::MulScalar(x, static_cast<float>(i));
    sum = sum.defined() ? ag::Add(sum, term) : term;
  }
  sum.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1275.0f);
}

}  // namespace
}  // namespace mocograd
