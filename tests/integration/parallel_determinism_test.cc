// The parallel compute layer's core guarantee: for ANY pool size, every
// kernel and the trainer's parallel per-task backward produce output
// bit-identical to the serial (1-thread) path. Chunk boundaries never
// influence results, and reductions use a fixed block decomposition whose
// partials combine in block order (see base/thread_pool.h, tensor/ops.cc).

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "autograd/executor.h"
#include "autograd/ops.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/grad_matrix.h"
#include "core/registry.h"
#include "mtl/hps.h"
#include "mtl/trainer.h"
#include "optim/optimizer.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace mocograd {
namespace {

using autograd::Variable;
using data::Batch;
using data::TaskKind;

const int kThreadCounts[] = {1, 2, 8};

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.NumElements() == b.NumElements() &&
         std::memcmp(a.data(), b.data(),
                     a.NumElements() * sizeof(float)) == 0;
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_exec_ = autograd::CurrentBackwardExecutor();
  }
  // Leave a serial pool (and the entry executor) behind so other binaries'
  // expectations about the default environment still hold if this process
  // forks more work.
  void TearDown() override {
    autograd::SetBackwardExecutor(previous_exec_);
    ThreadPool::SetGlobalNumThreads(1);
  }

 private:
  autograd::BackwardExecutor previous_exec_ =
      autograd::BackwardExecutor::kReadyQueue;
};

TEST_F(ParallelDeterminismTest, GemmBitIdenticalAcrossThreadCounts) {
  Rng rng(42);
  const int64_t m = 67, n = 83, k = 129;
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor c0 = Tensor::Randn({m, n}, rng);

  std::vector<Tensor> results;
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    Tensor c = c0.Clone();
    Gemm(false, false, m, n, k, 1.3f, a.data(), k, b.data(), n, 0.7f,
         c.data(), n);
    results.push_back(c);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(BitIdentical(results[0], results[i]))
        << "Gemm differs at " << kThreadCounts[i] << " threads";
  }

  // Transposed operands go through the packing path; check it too.
  results.clear();
  Tensor at = tops::Transpose2D(a);  // [k, m] stored
  Tensor bt = tops::Transpose2D(b);  // [n, k] stored
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    Tensor c = c0.Clone();
    Gemm(true, true, m, n, k, 1.0f, at.data(), m, bt.data(), k, 1.0f,
         c.data(), n);
    results.push_back(c);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(BitIdentical(results[0], results[i]))
        << "transposed Gemm differs at " << kThreadCounts[i] << " threads";
  }
}

TEST_F(ParallelDeterminismTest, ReductionsBitIdenticalAcrossThreadCounts) {
  Rng rng(7);
  // Large enough for several fixed reduction blocks.
  Tensor a = Tensor::Randn({100003}, rng);
  Tensor b = Tensor::Randn({100003}, rng);

  float sum1 = 0, norm1 = 0, dot1 = 0;
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    const float sum = tops::SumAll(a);
    const float norm = tops::Norm(a);
    const float dot = tops::Dot(a, b);
    if (threads == 1) {
      sum1 = sum;
      norm1 = norm;
      dot1 = dot;
    } else {
      EXPECT_EQ(std::memcmp(&sum, &sum1, sizeof(float)), 0);
      EXPECT_EQ(std::memcmp(&norm, &norm1, sizeof(float)), 0);
      EXPECT_EQ(std::memcmp(&dot, &dot1, sizeof(float)), 0);
    }
  }
}

TEST_F(ParallelDeterminismTest, GradMatrixOpsBitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const int kTasks = 3;
  const int64_t dim = 120001;
  core::GradMatrix grads(kTasks, dim);
  for (int t = 0; t < kTasks; ++t) {
    float* row = grads.Row(t);
    for (int64_t p = 0; p < dim; ++p) row[p] = rng.Normal();
  }

  double dot1 = 0;
  std::vector<float> sum1, wsum1;
  const std::vector<double> w = {0.2, 1.7, -0.4};
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    const double dot = grads.RowDot(0, 1);
    std::vector<float> sum = grads.SumRows();
    std::vector<float> wsum = grads.WeightedSumRows(w);
    if (threads == 1) {
      dot1 = dot;
      sum1 = sum;
      wsum1 = wsum;
    } else {
      EXPECT_EQ(std::memcmp(&dot, &dot1, sizeof(double)), 0);
      EXPECT_EQ(std::memcmp(sum.data(), sum1.data(),
                            sum.size() * sizeof(float)),
                0);
      EXPECT_EQ(std::memcmp(wsum.data(), wsum1.data(),
                            wsum.size() * sizeof(float)),
                0);
    }
  }
}

// BackwardInto must leave exactly the bits in its sink that Backward()
// leaves in the leaves' grad buffers (from a zeroed state).
TEST_F(ParallelDeterminismTest, BackwardIntoMatchesBackwardBitwise) {
  ThreadPool::SetGlobalNumThreads(1);
  Rng rng(5);
  Variable w(Tensor::Randn({32, 16}, rng), /*requires_grad=*/true);
  Variable x(Tensor::Randn({48, 32}, rng), /*requires_grad=*/false);
  Variable y = autograd::Tanh(autograd::MatMul(x, w));
  Variable loss = autograd::MseLoss(y, Tensor::Zeros(y.shape()));

  loss.Backward();
  Tensor reference = w.grad().Clone();

  Variable::GradSink sink;
  loss.BackwardInto(&sink);
  auto it = sink.find(w.node().get());
  ASSERT_NE(it, sink.end());
  EXPECT_TRUE(BitIdentical(reference, it->second));
}

// End to end: the trainer's parallel per-task backward (K sweeps on K
// workers, nested parallel GEMMs) must leave bit-identical parameters after
// several optimization steps, for any pool size.
TEST_F(ParallelDeterminismTest, TrainerStepsBitIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    ThreadPool::SetGlobalNumThreads(threads);
    Rng rng(123);
    mtl::HpsConfig cfg;
    cfg.input_dim = 48;
    cfg.shared_dims = {96, 64};
    cfg.task_output_dims = {1, 1, 1};
    mtl::HpsModel model(cfg, rng);

    Tensor x = Tensor::Randn({64, 48}, rng);
    std::vector<Batch> batches;
    for (int t = 0; t < 3; ++t) {
      Tensor y = Tensor::Randn({64, 1}, rng);
      batches.push_back(Batch{.x = x, .y = y, .labels = {}});
    }

    auto aggregator = core::MakeAggregator("mocograd").value();
    optim::Adam opt(model.Parameters(), 1e-2f);
    mtl::MtlTrainer trainer(&model, aggregator.get(), &opt,
                            {TaskKind::kRegression, TaskKind::kRegression,
                             TaskKind::kRegression},
                            /*seed=*/17);
    std::vector<float> losses;
    for (int step = 0; step < 4; ++step) {
      mtl::StepStats stats = trainer.Step(batches);
      losses.insert(losses.end(), stats.losses.begin(), stats.losses.end());
    }

    std::vector<Tensor> params;
    for (Variable* p : model.Parameters()) params.push_back(p->value().Clone());
    return std::make_pair(params, losses);
  };

  auto [params1, losses1] = run(1);
  for (int threads : {2, 8}) {
    auto [params, losses] = run(threads);
    ASSERT_EQ(params.size(), params1.size());
    for (size_t i = 0; i < params.size(); ++i) {
      EXPECT_TRUE(BitIdentical(params1[i], params[i]))
          << "parameter " << i << " differs at " << threads << " threads";
    }
    ASSERT_EQ(losses.size(), losses1.size());
    EXPECT_EQ(std::memcmp(losses.data(), losses1.data(),
                          losses.size() * sizeof(float)),
              0)
        << "losses differ at " << threads << " threads";
  }
}

// The tentpole scenario for the ready-queue executor: K per-task sweeps over
// one shared trunk launched concurrently, each feeding its ready nodes to the
// same pool. For every pool size and either executor, each task's sink must
// hold exactly the bits a serial 1-thread sequential sweep produces.
TEST_F(ParallelDeterminismTest, ConcurrentSharedTrunkSweepsBitIdentical) {
  constexpr int kTasks = 4;
  Rng rng(2024);
  // One shared trunk, K task heads — the trainer's tape shape in miniature.
  Variable w_trunk(Tensor::Randn({40, 56}, rng), /*requires_grad=*/true);
  Variable x(Tensor::Randn({24, 40}, rng), /*requires_grad=*/false);
  std::vector<Variable> heads;
  std::vector<Tensor> targets;
  for (int t = 0; t < kTasks; ++t) {
    heads.emplace_back(Tensor::Randn({56, 3}, rng), /*requires_grad=*/true);
    targets.push_back(Tensor::Randn({24, 3}, rng));
  }
  Variable trunk = autograd::Tanh(autograd::MatMul(x, w_trunk));
  std::vector<Variable> losses;
  for (int t = 0; t < kTasks; ++t) {
    losses.push_back(autograd::MseLoss(autograd::MatMul(trunk, heads[t]),
                                       targets[t]));
  }

  // Reference: serial sequential sweeps at pool size 1.
  autograd::SetBackwardExecutor(autograd::BackwardExecutor::kSequential);
  ThreadPool::SetGlobalNumThreads(1);
  std::vector<Variable::GradSink> reference(kTasks);
  for (int t = 0; t < kTasks; ++t) losses[t].BackwardInto(&reference[t]);

  for (autograd::BackwardExecutor exec :
       {autograd::BackwardExecutor::kSequential,
        autograd::BackwardExecutor::kReadyQueue}) {
    autograd::SetBackwardExecutor(exec);
    for (int threads : kThreadCounts) {
      ThreadPool::SetGlobalNumThreads(threads);
      std::vector<Variable::GradSink> sinks(kTasks);
      ParallelFor(0, kTasks, 1, [&](int64_t t0, int64_t t1) {
        for (int64_t t = t0; t < t1; ++t) {
          losses[t].BackwardInto(&sinks[t]);
        }
      });
      for (int t = 0; t < kTasks; ++t) {
        for (const Variable* leaf : {&w_trunk, &heads[t]}) {
          auto ref_it = reference[t].find(leaf->node().get());
          auto got_it = sinks[t].find(leaf->node().get());
          ASSERT_NE(ref_it, reference[t].end());
          ASSERT_NE(got_it, sinks[t].end());
          EXPECT_TRUE(BitIdentical(ref_it->second, got_it->second))
              << "task " << t << " differs at " << threads << " threads, "
              << (exec == autograd::BackwardExecutor::kReadyQueue ? "ready"
                                                                  : "seq");
        }
      }
    }
  }
}

// Regression for MOCOGRAD_AUTOGRAD_EXEC: the seq fallback and the default
// ready engine must leave bit-identical parameters after full trainer steps.
TEST_F(ParallelDeterminismTest, TrainerSeqVsReadyBitIdentical) {
  auto run = [](autograd::BackwardExecutor exec) {
    autograd::SetBackwardExecutor(exec);
    ThreadPool::SetGlobalNumThreads(4);
    Rng rng(321);
    mtl::HpsConfig cfg;
    cfg.input_dim = 32;
    cfg.shared_dims = {64, 48};
    cfg.task_output_dims = {1, 1};
    mtl::HpsModel model(cfg, rng);

    Tensor x = Tensor::Randn({48, 32}, rng);
    std::vector<Batch> batches;
    for (int t = 0; t < 2; ++t) {
      Tensor y = Tensor::Randn({48, 1}, rng);
      batches.push_back(Batch{.x = x, .y = y, .labels = {}});
    }

    auto aggregator = core::MakeAggregator("mocograd").value();
    optim::Adam opt(model.Parameters(), 1e-2f);
    mtl::MtlTrainer trainer(&model, aggregator.get(), &opt,
                            {TaskKind::kRegression, TaskKind::kRegression},
                            /*seed=*/29);
    for (int step = 0; step < 3; ++step) trainer.Step(batches);

    std::vector<Tensor> params;
    for (Variable* p : model.Parameters()) params.push_back(p->value().Clone());
    return params;
  };

  std::vector<Tensor> seq = run(autograd::BackwardExecutor::kSequential);
  std::vector<Tensor> ready = run(autograd::BackwardExecutor::kReadyQueue);
  ASSERT_EQ(seq.size(), ready.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_TRUE(BitIdentical(seq[i], ready[i]))
        << "parameter " << i << " differs between seq and ready executors";
  }
}

}  // namespace
}  // namespace mocograd
