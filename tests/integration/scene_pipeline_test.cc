// Integration test of the dense-prediction pipeline: procedural scenes →
// conv MTL model → per-pixel losses → aggregated training → pixel metrics.

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/registry.h"
#include "data/scene.h"
#include "eval/metrics.h"
#include "harness/experiment.h"
#include "mtl/scene_model.h"
#include "mtl/trainer.h"
#include "optim/optimizer.h"

namespace mocograd {
namespace {

TEST(ScenePipelineTest, SegmentationLearnsAboveMajorityBaseline) {
  data::SceneConfig sc;
  sc.mode = data::SceneMode::kCityscapes;
  sc.num_train = 48;
  sc.num_test = 24;
  sc.hw = 12;
  data::SceneSim ds(sc);

  // Majority-class pixel accuracy on the test labels.
  auto test = ds.TestBatches();
  std::vector<int64_t> counts(ds.num_classes(), 0);
  for (int64_t l : test[0].labels) counts[l]++;
  const double majority =
      static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
      test[0].labels.size();

  auto factory = harness::SceneConvFactory(3, 12, 2);
  harness::TrainConfig cfg;
  cfg.steps = 120;
  cfg.batch_size = 6;
  cfg.lr = 4e-3f;
  cfg.seed = 3;
  auto r = harness::RunMethod(ds, {0, 1}, "mocograd", factory, cfg);
  EXPECT_GT(r.task_metrics[0][1].value, majority + 0.03)
      << "pixacc must clearly beat predicting the majority class";
}

TEST(ScenePipelineTest, ConflictTrackerSeesDenseGradients) {
  data::SceneConfig sc;
  sc.mode = data::SceneMode::kNyu;
  sc.num_train = 16;
  sc.num_test = 8;
  sc.hw = 10;
  data::SceneSim ds(sc);

  Rng rng(5);
  mtl::SceneConvConfig mc;
  mc.in_channels = 3;
  mc.width = 6;
  mc.num_encoder_layers = 2;
  mc.task_out_channels = {13, 1, 3};
  mtl::SceneConvModel model(mc, rng);
  auto agg = core::MakeAggregator("mocograd").value();
  optim::Adam opt(model.Parameters(), 3e-3f);
  mtl::MtlTrainer trainer(&model, agg.get(), &opt,
                          {data::TaskKind::kPixelClassification,
                           data::TaskKind::kPixelRegression,
                           data::TaskKind::kPixelRegression},
                          9);
  core::ConflictTracker tracker;
  trainer.set_conflict_tracker(&tracker);

  Rng data_rng(7);
  for (int step = 0; step < 10; ++step) {
    trainer.Step(ds.SampleTrainBatches(4, data_rng));
  }
  EXPECT_EQ(tracker.num_steps(), 10);
  EXPECT_EQ(tracker.num_tasks(), 3);
  EXPECT_EQ(tracker.gcd_trace().size(), 10u);
  // GCD values are in [0, 2] by construction.
  for (double gcd : tracker.gcd_trace()) {
    EXPECT_GE(gcd, 0.0);
    EXPECT_LE(gcd, 2.0);
  }
}

TEST(ScenePipelineTest, DepthPredictionsInPlausibleRange) {
  data::SceneConfig sc;
  sc.mode = data::SceneMode::kCityscapes;
  sc.num_train = 32;
  sc.num_test = 16;
  sc.hw = 12;
  data::SceneSim ds(sc);
  auto factory = harness::SceneConvFactory(3, 10, 2);
  harness::TrainConfig cfg;
  cfg.steps = 150;
  cfg.batch_size = 8;
  cfg.lr = 4e-3f;
  cfg.seed = 11;
  auto r = harness::RunMethod(ds, {0, 1}, "ew", factory, cfg);
  // Depth targets live in [0.36, 2.7] (scaled disparity); a trained model's
  // mean absolute error should be well under the target spread.
  EXPECT_LT(r.task_metrics[1][0].value, 0.6);
  // Rel err is a percentage.
  EXPECT_GT(r.task_metrics[1][1].value, 0.0);
  EXPECT_LT(r.task_metrics[1][1].value, 60.0);
}

}  // namespace
}  // namespace mocograd
