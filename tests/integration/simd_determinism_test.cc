// The SIMD layer's core guarantee (docs/SIMD.md): every runtime-dispatch
// kernel tier — scalar, SSE, NEON, AVX2, AVX-512 — produces bit-identical
// results, for every kernel, at every pool size. Combined with the
// thread-determinism contract this means a training run's bits depend on
// none of MOCOGRAD_SIMD, MOCOGRAD_SIMD_ISA, or MOCOGRAD_NUM_THREADS.
//
// On builds without a hardware backend (MOCOGRAD_ENABLE_SIMD=OFF or an ISA
// without one) SetEnabled is a no-op, only the scalar tier exists, and the
// comparisons trivially hold.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <limits>
#include <utility>
#include <vector>

#include "base/bf16.h"
#include "base/rng.h"
#include "base/simd.h"
#include "base/thread_pool.h"
#include "core/grad_matrix.h"
#include "core/registry.h"
#include "mtl/hps.h"
#include "mtl/trainer.h"
#include "optim/optimizer.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace mocograd {
namespace {

using autograd::Variable;
using data::Batch;
using data::TaskKind;

// (simd enabled, pool size) grid; the (true, 1) cell is the reference.
const std::pair<bool, int> kConfigs[] = {
    {true, 1}, {true, 2}, {true, 8}, {false, 1}, {false, 2}, {false, 8}};

// Every tier this host can actually run (SetTier clamps unavailable
// requests down, so requesting each tier and keeping the exact grants
// enumerates the usable set — always at least {scalar}).
std::vector<simd::IsaTier> AvailableTiers() {
  std::vector<simd::IsaTier> tiers;
  for (simd::IsaTier t :
       {simd::IsaTier::kScalar, simd::IsaTier::kSse, simd::IsaTier::kNeon,
        simd::IsaTier::kAvx2, simd::IsaTier::kAvx512}) {
    simd::SetTier(t);
    if (simd::ActiveTier() == t) tiers.push_back(t);
  }
  simd::SetEnabled(true);
  return tiers;
}

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.NumElements() == b.NumElements() &&
         std::memcmp(a.data(), b.data(), a.NumElements() * sizeof(float)) ==
             0;
}

bool BitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

class SimdDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::SetGlobalNumThreads(1);
    simd::SetEnabled(true);  // no-op on scalar-only builds
  }
};

TEST_F(SimdDeterminismTest, GemmBitIdenticalAcrossBackendsAndPools) {
  Rng rng(42);
  const int64_t m = 67, n = 83, k = 129;
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor c0 = Tensor::Randn({m, n}, rng);
  Tensor at = tops::Transpose2D(a);
  Tensor bt = tops::Transpose2D(b);

  Tensor ref_plain, ref_trans;
  for (const auto& [enabled, threads] : kConfigs) {
    simd::SetEnabled(enabled);
    ThreadPool::SetGlobalNumThreads(threads);
    Tensor c = c0.Clone();
    Gemm(false, false, m, n, k, 1.3f, a.data(), k, b.data(), n, 0.7f,
         c.data(), n);
    Tensor ct = c0.Clone();
    Gemm(true, true, m, n, k, -0.5f, at.data(), m, bt.data(), k, 1.0f,
         ct.data(), n);
    if (!ref_plain.defined()) {
      ref_plain = c;
      ref_trans = ct;
    } else {
      EXPECT_TRUE(BitIdentical(ref_plain, c))
          << "Gemm differs (simd=" << enabled << ", threads=" << threads
          << ")";
      EXPECT_TRUE(BitIdentical(ref_trans, ct))
          << "transposed Gemm differs (simd=" << enabled
          << ", threads=" << threads << ")";
    }
  }
}

TEST_F(SimdDeterminismTest, TensorKernelsBitIdenticalAcrossBackendsAndPools) {
  Rng rng(7);
  // Large enough for several reduction blocks and elementwise chunks.
  Tensor a = Tensor::Randn({100003}, rng);
  Tensor b = Tensor::Randn({100003}, rng);
  // Salt the inputs with the values on which Max/Min backends can disagree
  // (the contract pins second-operand-wins on unordered and +/-0 ties):
  // NaN, +/-Inf and -0.0, placed both inside full 8-lane blocks and in the
  // scalar <8-element tail (n = 100003, tail = indices 100000..100002).
  const float kNan = std::numeric_limits<float>::quiet_NaN();
  const float kInf = std::numeric_limits<float>::infinity();
  const int64_t kSpecial[][2] = {
      // {index, 0 = a / 1 = b}
      {5, 0},     {6, 1},     {777, 0},    {778, 0},    {4096, 1},
      {4097, 0},  {50001, 0}, {50002, 1},  {100000, 0}, {100001, 1},
      {100002, 0}};
  const float kVals[] = {kNan, kNan, -0.0f, kInf,  -kInf, kNan,
                         -0.0f, kInf, kNan,  -0.0f, -kInf};
  for (size_t i = 0; i < std::size(kSpecial); ++i) {
    (kSpecial[i][1] ? b : a).data()[kSpecial[i][0]] = kVals[i];
  }
  // Pairs where a lane of a is special while the same lane of b is finite
  // (and vice versa) so Maximum's tie-breaking is actually exercised.
  a.data()[9] = kNan;
  b.data()[9] = 1.0f;
  a.data()[10] = 2.0f;
  b.data()[10] = kNan;
  a.data()[11] = -0.0f;
  b.data()[11] = 0.0f;
  a.data()[12] = 0.0f;
  b.data()[12] = -0.0f;

  bool have_ref = false;
  float sum0 = 0, norm0 = 0, dot0 = 0;
  Tensor add0, mul0, relu0, clamp0, max0, axpy0;
  for (const auto& [enabled, threads] : kConfigs) {
    simd::SetEnabled(enabled);
    ThreadPool::SetGlobalNumThreads(threads);
    const float sum = tops::SumAll(a);
    const float norm = tops::Norm(a);
    const float dot = tops::Dot(a, b);
    Tensor add = tops::Add(a, b);
    Tensor mul = tops::Mul(a, b);
    Tensor relu = tops::Relu(a);
    Tensor clamp = tops::Clamp(a, -0.5f, 0.5f);
    Tensor max = tops::Maximum(a, b);
    Tensor axpy = a.Clone();
    tops::Axpy(0.37f, b, axpy);
    if (!have_ref) {
      have_ref = true;
      sum0 = sum;
      norm0 = norm;
      dot0 = dot;
      add0 = add;
      mul0 = mul;
      relu0 = relu;
      clamp0 = clamp;
      max0 = max;
      axpy0 = axpy;
      // The contract's pinned semantics, identical on every backend: the
      // second operand of Max/Min wins on unordered comparisons and on
      // +/-0 ties.
      auto bits = [](float x) {
        uint32_t u;
        std::memcpy(&u, &x, sizeof(u));
        return u;
      };
      EXPECT_EQ(bits(relu.data()[5]), bits(0.0f));    // Relu(NaN) == +0.0
      EXPECT_EQ(bits(relu.data()[777]), bits(0.0f));  // Relu(-0.0) == +0.0
      // tops::Maximum(a, b) == std::max(a, b) lane-for-lane: the FIRST
      // tensor's element wins on unordered comparisons and +/-0 ties.
      EXPECT_TRUE(std::isnan(max.data()[9]));         // Maximum(NaN, 1)
      EXPECT_EQ(bits(max.data()[10]), bits(2.0f));    // Maximum(2, NaN)
      EXPECT_EQ(bits(max.data()[11]), bits(-0.0f));   // Maximum(-0, +0)
      EXPECT_EQ(bits(max.data()[12]), bits(0.0f));    // Maximum(+0, -0)
    } else {
      EXPECT_EQ(std::memcmp(&sum, &sum0, sizeof(float)), 0);
      EXPECT_EQ(std::memcmp(&norm, &norm0, sizeof(float)), 0);
      EXPECT_EQ(std::memcmp(&dot, &dot0, sizeof(float)), 0);
      EXPECT_TRUE(BitIdentical(add0, add));
      EXPECT_TRUE(BitIdentical(mul0, mul));
      EXPECT_TRUE(BitIdentical(relu0, relu))
          << "Relu differs (simd=" << enabled << ", threads=" << threads
          << ")";
      EXPECT_TRUE(BitIdentical(clamp0, clamp))
          << "Clamp differs (simd=" << enabled << ", threads=" << threads
          << ")";
      EXPECT_TRUE(BitIdentical(max0, max))
          << "Maximum differs (simd=" << enabled << ", threads=" << threads
          << ")";
      EXPECT_TRUE(BitIdentical(axpy0, axpy))
          << "Axpy differs (simd=" << enabled << ", threads=" << threads
          << ")";
    }
  }
}

TEST_F(SimdDeterminismTest, GradMatrixOpsBitIdenticalAcrossBackendsAndPools) {
  Rng rng(11);
  const int kTasks = 3;
  const int64_t dim = 120001;
  core::GradMatrix grads(kTasks, dim);
  for (int t = 0; t < kTasks; ++t) {
    float* row = grads.Row(t);
    for (int64_t p = 0; p < dim; ++p) row[p] = rng.Normal();
  }
  const std::vector<double> w = {0.2, 1.7, -0.4};

  bool have_ref = false;
  double dot0 = 0;
  std::vector<float> sum0, wsum0;
  for (const auto& [enabled, threads] : kConfigs) {
    simd::SetEnabled(enabled);
    ThreadPool::SetGlobalNumThreads(threads);
    const double dot = grads.RowDot(0, 1);
    std::vector<float> sum = grads.SumRows();
    std::vector<float> wsum = grads.WeightedSumRows(w);
    if (!have_ref) {
      have_ref = true;
      dot0 = dot;
      sum0 = std::move(sum);
      wsum0 = std::move(wsum);
    } else {
      EXPECT_EQ(std::memcmp(&dot, &dot0, sizeof(double)), 0);
      EXPECT_TRUE(BitIdentical(sum0, sum));
      EXPECT_TRUE(BitIdentical(wsum0, wsum));
    }
  }
}

TEST_F(SimdDeterminismTest, OptimizerStepsBitIdenticalAcrossBackendsAndPools) {
  auto run = [](bool enabled, int threads) {
    simd::SetEnabled(enabled);
    ThreadPool::SetGlobalNumThreads(threads);
    Rng rng(99);
    Variable w(Tensor::Randn({37, 21}, rng), /*requires_grad=*/true);
    Tensor g = Tensor::Randn({37, 21}, rng);
    optim::Adam opt({&w}, 1e-2f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.01f);
    for (int step = 0; step < 5; ++step) {
      w.mutable_grad().CopyFrom(g);
      opt.Step();
    }
    return w.value().Clone();
  };
  Tensor ref = run(true, 1);
  for (const auto& [enabled, threads] : kConfigs) {
    EXPECT_TRUE(BitIdentical(ref, run(enabled, threads)))
        << "Adam differs (simd=" << enabled << ", threads=" << threads << ")";
  }
}

// End to end: a short MoCoGrad training run — forward, per-task backward,
// aggregation (dots, axpys, EMA), Adam — leaves bit-identical parameters
// whatever the backend and pool size.
TEST_F(SimdDeterminismTest, TrainerStepsBitIdenticalAcrossBackendsAndPools) {
  auto run = [](bool enabled, int threads) {
    simd::SetEnabled(enabled);
    ThreadPool::SetGlobalNumThreads(threads);
    Rng rng(123);
    mtl::HpsConfig cfg;
    cfg.input_dim = 48;
    cfg.shared_dims = {96, 64};
    cfg.task_output_dims = {1, 1, 1};
    mtl::HpsModel model(cfg, rng);

    Tensor x = Tensor::Randn({64, 48}, rng);
    std::vector<Batch> batches;
    for (int t = 0; t < 3; ++t) {
      Tensor y = Tensor::Randn({64, 1}, rng);
      batches.push_back(Batch{.x = x, .y = y, .labels = {}});
    }

    auto aggregator = core::MakeAggregator("mocograd").value();
    optim::Adam opt(model.Parameters(), 1e-2f);
    mtl::MtlTrainer trainer(&model, aggregator.get(), &opt,
                            {TaskKind::kRegression, TaskKind::kRegression,
                             TaskKind::kRegression},
                            /*seed=*/17);
    std::vector<float> losses;
    for (int step = 0; step < 4; ++step) {
      mtl::StepStats stats = trainer.Step(batches);
      losses.insert(losses.end(), stats.losses.begin(), stats.losses.end());
    }
    std::vector<Tensor> params;
    for (Variable* p : model.Parameters()) {
      params.push_back(p->value().Clone());
    }
    return std::make_pair(params, losses);
  };

  auto [params0, losses0] = run(true, 1);
  for (const auto& [enabled, threads] : kConfigs) {
    auto [params, losses] = run(enabled, threads);
    ASSERT_EQ(params.size(), params0.size());
    for (size_t i = 0; i < params.size(); ++i) {
      EXPECT_TRUE(BitIdentical(params0[i], params[i]))
          << "parameter " << i << " differs (simd=" << enabled
          << ", threads=" << threads << ")";
    }
    ASSERT_EQ(losses.size(), losses0.size());
    EXPECT_TRUE(BitIdentical(losses0, losses))
        << "losses differ (simd=" << enabled << ", threads=" << threads
        << ")";
  }
}

// The per-tier battery: every tier the host can run — not just the
// enabled/disabled pair above — produces bit-identical GEMM (all shape
// paths), bf16 GEMM, elementwise, reduction, and optimizer results at
// several pool sizes. This is the cross-tier half of the runtime-dispatch
// contract; run_tests.sh additionally re-runs whole suites under
// MOCOGRAD_SIMD_ISA=scalar / sse to pin the startup-selection half.
TEST_F(SimdDeterminismTest, AllTiersBitIdentical) {
  Rng rng(314);
  const int64_t m = 37, n = 51, k = 129;  // streaming path, ragged panels
  Tensor a = Tensor::Randn({m, k}, rng);
  Tensor b = Tensor::Randn({k, n}, rng);
  Tensor c0 = Tensor::Randn({m, n}, rng);
  const int64_t bm = 33, bn = 300;  // blocked path (m >= 16, n >= 256)
  Tensor ba = Tensor::Randn({bm, k}, rng);
  Tensor bb = Tensor::Randn({k, bn}, rng);
  Tensor ew = Tensor::Randn({10007}, rng);
  std::vector<uint16_t> b16(static_cast<size_t>(k) * n);
  for (size_t i = 0; i < b16.size(); ++i) b16[i] = Bf16FromF32(bb.data()[i]);

  const std::vector<simd::IsaTier> tiers = AvailableTiers();
  ASSERT_FALSE(tiers.empty());

  Tensor ref_c, ref_blk, ref_relu, ref_opt;
  std::vector<float> ref_bf16, ref_bf16_row;
  float ref_sum = 0.0f;
  bool have_ref = false;
  for (simd::IsaTier tier : tiers) {
    for (int threads : {1, 4}) {
      simd::SetTier(tier);
      ASSERT_EQ(simd::ActiveTier(), tier);
      ThreadPool::SetGlobalNumThreads(threads);

      Tensor c = c0.Clone();
      Gemm(false, false, m, n, k, 1.3f, a.data(), k, b.data(), n, 0.7f,
           c.data(), n);
      Tensor blk = Tensor::Zeros({bm, bn});
      Gemm(false, false, bm, bn, k, 1.0f, ba.data(), k, bb.data(), bn, 0.0f,
           blk.data(), bn);
      std::vector<float> cbf(static_cast<size_t>(m) * n);
      GemmBf16B(m, n, k, a.data(), k, b16.data(), n, cbf.data(), n);
      std::vector<float> cbf_row(static_cast<size_t>(n));
      GemmBf16B(1, n, k, a.data(), k, b16.data(), n, cbf_row.data(), n);
      Tensor relu = tops::Relu(ew);
      const float sum = tops::SumAll(ew);
      Rng wrng(5), grng(6);
      Variable w(Tensor::Randn({13, 7}, wrng), /*requires_grad=*/true);
      optim::Adam opt({&w}, 1e-2f);
      w.mutable_grad().CopyFrom(Tensor::Randn({13, 7}, grng));
      opt.Step();

      if (!have_ref) {
        have_ref = true;
        ref_c = c;
        ref_blk = blk;
        ref_bf16 = cbf;
        ref_bf16_row = cbf_row;
        ref_relu = relu;
        ref_sum = sum;
        ref_opt = w.value().Clone();
        // The bf16 batched rows and the m == 1 row agree per element
        // (batch-invariant serving).
        for (int64_t j = 0; j < n; ++j) {
          ASSERT_EQ(cbf[static_cast<size_t>(j)], cbf_row[j]) << j;
        }
      } else {
        const char* name = simd::TierName(tier);
        EXPECT_TRUE(BitIdentical(ref_c, c))
            << "Gemm differs (tier=" << name << ", threads=" << threads
            << ")";
        EXPECT_TRUE(BitIdentical(ref_blk, blk))
            << "blocked Gemm differs (tier=" << name
            << ", threads=" << threads << ")";
        EXPECT_TRUE(BitIdentical(ref_bf16, cbf))
            << "GemmBf16B differs (tier=" << name << ", threads=" << threads
            << ")";
        EXPECT_TRUE(BitIdentical(ref_bf16_row, cbf_row))
            << "GemmBf16B m=1 differs (tier=" << name
            << ", threads=" << threads << ")";
        EXPECT_TRUE(BitIdentical(ref_relu, relu))
            << "Relu differs (tier=" << name << ", threads=" << threads
            << ")";
        EXPECT_EQ(std::memcmp(&sum, &ref_sum, sizeof(float)), 0)
            << "SumAll differs (tier=" << name << ", threads=" << threads
            << ")";
        EXPECT_TRUE(BitIdentical(ref_opt, w.value()))
            << "Adam differs (tier=" << name << ", threads=" << threads
            << ")";
      }
    }
  }
}

}  // namespace
}  // namespace mocograd
