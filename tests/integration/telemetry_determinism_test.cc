// The conflict observatory's core contract: telemetry, decision tracing,
// and the watchdog are observation-only. Training with the full telemetry
// stack attached (sink sampling every step + watchdog armed) must leave
// bit-identical parameters to training with all of it off — for any pool
// size and either backward executor (ISSUE 7 acceptance criterion).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "autograd/executor.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/registry.h"
#include "mtl/hps.h"
#include "mtl/trainer.h"
#include "obs/telemetry.h"
#include "optim/optimizer.h"

namespace mocograd {
namespace {

using data::Batch;
using data::TaskKind;

class TelemetryDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_exec_ = autograd::CurrentBackwardExecutor();
  }
  void TearDown() override {
    autograd::SetBackwardExecutor(previous_exec_);
    ThreadPool::SetGlobalNumThreads(1);
  }

 private:
  autograd::BackwardExecutor previous_exec_ =
      autograd::BackwardExecutor::kReadyQueue;
};

// Trains a small 3-task model and returns every parameter's bytes.
std::vector<float> Train(const std::string& method, int threads,
                         autograd::BackwardExecutor exec,
                         bool telemetry_on, const std::string& path) {
  ThreadPool::SetGlobalNumThreads(threads);
  autograd::SetBackwardExecutor(exec);

  Rng rng(321);
  mtl::HpsConfig cfg;
  cfg.input_dim = 24;
  cfg.shared_dims = {32, 16};
  cfg.task_output_dims = {1, 1, 1};
  mtl::HpsModel model(cfg, rng);

  Tensor x = Tensor::Randn({32, 24}, rng);
  std::vector<Batch> batches;
  for (int t = 0; t < 3; ++t) {
    Tensor y = Tensor::Randn({32, 1}, rng);
    batches.push_back(Batch{.x = x, .y = y, .labels = {}});
  }

  auto aggregator = core::MakeAggregator(method).value();
  optim::Adam opt(model.Parameters(), 1e-2f);
  mtl::MtlTrainer trainer(&model, aggregator.get(), &opt,
                          {TaskKind::kRegression, TaskKind::kRegression,
                           TaskKind::kRegression},
                          /*seed=*/99);

  std::unique_ptr<obs::TelemetrySink> sink;
  mtl::WatchdogOptions wd_opts;
  if (telemetry_on) {
    sink = std::make_unique<obs::TelemetrySink>(path, /*every=*/1);
    EXPECT_TRUE(sink->ok()) << sink->status().ToString();
    trainer.set_telemetry_sink(sink.get());
    wd_opts.enabled = true;
    wd_opts.warmup_steps = 1;  // arm the detectors almost immediately
  } else {
    wd_opts.enabled = false;
  }
  trainer.watchdog()->set_options(wd_opts);

  for (int step = 0; step < 6; ++step) trainer.Step(batches);

  std::vector<float> out;
  for (autograd::Variable* p : model.Parameters()) {
    const float* d = p->value().data();
    out.insert(out.end(), d, d + p->NumElements());
  }
  return out;
}

TEST_F(TelemetryDeterminismTest,
       TelemetryAndWatchdogAreBitwiseInvisibleAcrossPoolsAndExecutors) {
  const std::string path =
      ::testing::TempDir() + "/telemetry_determinism.jsonl";
  for (const char* method : {"mocograd", "pcgrad"}) {
    std::remove(path.c_str());
    const std::vector<float> baseline =
        Train(method, 1, autograd::BackwardExecutor::kSequential,
              /*telemetry_on=*/false, path);
    for (int threads : {1, 8}) {
      for (autograd::BackwardExecutor exec :
           {autograd::BackwardExecutor::kSequential,
            autograd::BackwardExecutor::kReadyQueue}) {
        for (bool telemetry_on : {false, true}) {
          const std::vector<float> got =
              Train(method, threads, exec, telemetry_on, path);
          ASSERT_EQ(got.size(), baseline.size());
          EXPECT_EQ(std::memcmp(got.data(), baseline.data(),
                                got.size() * sizeof(float)),
                    0)
              << method << " differs at threads=" << threads
              << " exec=" << (exec == autograd::BackwardExecutor::kSequential
                                  ? "seq"
                                  : "ready")
              << " telemetry=" << telemetry_on;
        }
      }
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace mocograd
