#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "autograd/ops.h"
#include "mtl/cgc.h"
#include "mtl/cross_stitch.h"
#include "mtl/embedding_hps.h"
#include "mtl/hps.h"
#include "mtl/mmoe.h"
#include "mtl/mtan.h"
#include "mtl/scene_model.h"

namespace mocograd {
namespace {

using autograd::Variable;
namespace ag = autograd;

std::vector<Variable> SameInput(const Tensor& x, int k) {
  std::vector<Variable> v;
  for (int i = 0; i < k; ++i) v.emplace_back(x, false);
  return v;
}

// Common checks for every MtlModel: forward shapes, disjoint shared/task
// parameter sets covering all parameters, and per-task gradient isolation
// (task k's loss must not touch task j's specific parameters).
void CheckModelContract(mtl::MtlModel& model, const Tensor& x,
                        const std::vector<int64_t>& out_dims) {
  const int k = model.num_tasks();
  auto outs = model.Forward(SameInput(x, k));
  ASSERT_EQ(static_cast<int>(outs.size()), k);
  for (int t = 0; t < k; ++t) {
    EXPECT_EQ(outs[t].shape().Dim(0), x.Dim(0));
    EXPECT_EQ(outs[t].shape().Dim(1), out_dims[t]);
  }

  // Shared + task parameter sets partition Parameters().
  const auto all_params = model.Parameters();
  std::set<Variable*> all(all_params.begin(), all_params.end());
  std::set<Variable*> seen;
  for (Variable* p : model.SharedParameters()) {
    EXPECT_TRUE(all.count(p));
    EXPECT_TRUE(seen.insert(p).second) << "duplicate shared param";
  }
  for (int t = 0; t < k; ++t) {
    for (Variable* p : model.TaskParameters(t)) {
      EXPECT_TRUE(all.count(p));
      EXPECT_TRUE(seen.insert(p).second)
          << "param in two task sets / shared+task overlap";
    }
  }
  EXPECT_EQ(seen.size(), all.size()) << "params not covered by shared+task";

  // Gradient isolation: backprop task 0's output only.
  model.ZeroGrad();
  ag::MeanAll(outs[0]).Backward();
  for (Variable* p : model.SharedParameters()) {
    EXPECT_TRUE(p->has_grad());
  }
  if (k > 1) {
    for (Variable* p : model.TaskParameters(k - 1)) {
      const bool zero =
          !p->has_grad() || tops::Norm(p->grad()) == 0.0f;
      EXPECT_TRUE(zero) << "task " << k - 1
                        << " params touched by task 0 loss";
    }
  }
}

TEST(HpsModelTest, ContractAndShapes) {
  Rng rng(1);
  mtl::HpsConfig cfg;
  cfg.input_dim = 6;
  cfg.shared_dims = {16, 8};
  cfg.task_output_dims = {1, 3};
  mtl::HpsModel model(cfg, rng);
  EXPECT_EQ(model.num_tasks(), 2);
  Tensor x = Tensor::Randn({4, 6}, rng);
  auto outs = model.Forward(SameInput(x, 2));
  EXPECT_EQ(outs[0].shape(), (Shape{4, 1}));
  EXPECT_EQ(outs[1].shape(), (Shape{4, 3}));
  CheckModelContract(model, x, cfg.task_output_dims);
}

TEST(HpsModelTest, MultiInputForward) {
  Rng rng(2);
  mtl::HpsConfig cfg;
  cfg.input_dim = 5;
  cfg.shared_dims = {8};
  cfg.task_output_dims = {1, 1};
  mtl::HpsModel model(cfg, rng);
  Tensor xa = Tensor::Randn({3, 5}, rng);
  Tensor xb = Tensor::Randn({7, 5}, rng);
  auto outs = model.Forward({Variable(xa, false), Variable(xb, false)});
  EXPECT_EQ(outs[0].shape().Dim(0), 3);
  EXPECT_EQ(outs[1].shape().Dim(0), 7);
}

TEST(MmoeModelTest, ContractAndGateMixing) {
  Rng rng(3);
  mtl::MmoeConfig cfg;
  cfg.input_dim = 6;
  cfg.num_experts = 3;
  cfg.expert_dims = {8};
  cfg.task_output_dims = {1, 2};
  mtl::MmoeModel model(cfg, rng);
  Tensor x = Tensor::Randn({4, 6}, rng);
  CheckModelContract(model, x, cfg.task_output_dims);
  // Shared params = 3 experts x (W,b).
  EXPECT_EQ(model.SharedParameters().size(), 6u);
  // Task params = gate (W,b) + head (W,b).
  EXPECT_EQ(model.TaskParameters(0).size(), 4u);
}

TEST(CrossStitchModelTest, ContractAndStitchShape) {
  Rng rng(4);
  mtl::CrossStitchConfig cfg;
  cfg.input_dim = 6;
  cfg.tower_dims = {8, 8};
  cfg.task_output_dims = {1, 1, 2};
  mtl::CrossStitchModel model(cfg, rng);
  Tensor x = Tensor::Randn({4, 6}, rng);
  CheckModelContract(model, x, cfg.task_output_dims);
  // Shared: 3 towers x 2 layers x (W,b) + 2 stitch matrices = 14.
  EXPECT_EQ(model.SharedParameters().size(), 14u);
}

TEST(CrossStitchModelTest, NearDiagonalInitBehavesLikeTowers) {
  // With stitch_self_init = 1.0, the stitch is the identity and the model
  // equals independent towers.
  Rng rng(5);
  mtl::CrossStitchConfig cfg;
  cfg.input_dim = 4;
  cfg.tower_dims = {6};
  cfg.task_output_dims = {1, 1};
  cfg.stitch_self_init = 1.0f;
  mtl::CrossStitchModel model(cfg, rng);
  Tensor x = Tensor::Randn({2, 4}, rng);
  auto out1 = model.Forward(SameInput(x, 2));
  // Changing the input of task 1 must not affect task 0's output when the
  // stitch is the identity.
  Tensor x2 = Tensor::Randn({2, 4}, rng);
  auto out2 = model.Forward({Variable(x, false), Variable(x2, false)});
  for (int64_t i = 0; i < out1[0].NumElements(); ++i) {
    EXPECT_FLOAT_EQ(out1[0].value()[i], out2[0].value()[i]);
  }
}

TEST(MtanModelTest, Contract) {
  Rng rng(6);
  mtl::MtanConfig cfg;
  cfg.input_dim = 6;
  cfg.shared_dims = {12, 8};
  cfg.task_output_dims = {2, 1};
  mtl::MtanModel model(cfg, rng);
  Tensor x = Tensor::Randn({4, 6}, rng);
  CheckModelContract(model, x, cfg.task_output_dims);
}

TEST(CgcModelTest, Contract) {
  Rng rng(7);
  mtl::CgcConfig cfg;
  cfg.input_dim = 6;
  cfg.num_shared_experts = 2;
  cfg.num_task_experts = 1;
  cfg.expert_dims = {8};
  cfg.task_output_dims = {1, 1};
  mtl::CgcModel model(cfg, rng);
  Tensor x = Tensor::Randn({4, 6}, rng);
  CheckModelContract(model, x, cfg.task_output_dims);
  // Shared = 2 shared experts x (W,b).
  EXPECT_EQ(model.SharedParameters().size(), 4u);
  // Task = 1 private expert (W,b) + gate (W,b) + head (W,b).
  EXPECT_EQ(model.TaskParameters(1).size(), 6u);
}

TEST(SceneConvModelTest, DensePredictionShapes) {
  Rng rng(8);
  mtl::SceneConvConfig cfg;
  cfg.in_channels = 3;
  cfg.width = 8;
  cfg.num_encoder_layers = 2;
  cfg.task_out_channels = {13, 1, 3};
  mtl::SceneConvModel model(cfg, rng);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, rng);
  auto outs = model.Forward(SameInput(x, 3));
  EXPECT_EQ(outs[0].shape(), (Shape{2, 13, 8, 8}));
  EXPECT_EQ(outs[1].shape(), (Shape{2, 1, 8, 8}));
  EXPECT_EQ(outs[2].shape(), (Shape{2, 3, 8, 8}));
  // Gradient isolation across heads.
  model.ZeroGrad();
  ag::MeanAll(outs[1]).Backward();
  for (Variable* p : model.TaskParameters(0)) {
    EXPECT_TRUE(!p->has_grad() || tops::Norm(p->grad()) == 0.0f);
  }
  for (Variable* p : model.SharedParameters()) {
    EXPECT_TRUE(p->has_grad());
  }
}

TEST(EmbeddingHpsModelTest, CategoricalColumnsRouteToEmbeddings) {
  Rng rng(9);
  mtl::EmbeddingHpsConfig cfg;
  cfg.dense_dim = 4;
  cfg.cat_specs = {{10, 3}, {6, 2}};
  cfg.shared_dims = {8};
  cfg.task_output_dims = {1, 1};
  mtl::EmbeddingHpsModel model(cfg, rng);
  // Input: 4 dense + 2 id columns.
  Tensor x = Tensor::Zeros({2, 6});
  x.At(0, 4) = 3.0f;  // user segment ids
  x.At(1, 4) = 9.0f;
  x.At(0, 5) = 0.0f;  // item category ids
  x.At(1, 5) = 5.0f;
  auto outs = model.Forward(SameInput(x, 2));
  EXPECT_EQ(outs[0].shape(), (Shape{2, 1}));

  // Backward reaches the embedding tables (shared params include them).
  model.ZeroGrad();
  ag::MeanAll(outs[0]).Backward();
  auto shared = model.SharedParameters();
  // First shared params are the two embedding tables.
  EXPECT_EQ(shared[0]->shape(), (Shape{10, 3}));
  EXPECT_EQ(shared[1]->shape(), (Shape{6, 2}));
  EXPECT_TRUE(shared[0]->has_grad());
  // Only the selected rows of the table receive gradient.
  EXPECT_NE(tops::Norm(tops::SliceCols(
                tops::Transpose2D(shared[0]->grad()), 3, 1)),
            0.0f);
}

TEST(EmbeddingHpsModelTest, OutOfRangeIdAborts) {
  Rng rng(10);
  mtl::EmbeddingHpsConfig cfg;
  cfg.dense_dim = 2;
  cfg.cat_specs = {{4, 2}};
  cfg.shared_dims = {4};
  cfg.task_output_dims = {1};
  mtl::EmbeddingHpsModel model(cfg, rng);
  Tensor x = Tensor::Zeros({1, 3});
  x.At(0, 2) = 99.0f;  // id out of range
  EXPECT_DEATH(model.Forward({Variable(x, false)}), "out of range");
}

}  // namespace
}  // namespace mocograd
