// Consistency tests between the trainer's harvested per-task gradient
// matrix and direct autograd computation — the correctness backbone of the
// whole gradient-surgery pipeline.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "autograd/ops.h"
#include "core/aggregator.h"
#include "mtl/hps.h"
#include "mtl/trainer.h"
#include "optim/optimizer.h"

namespace mocograd {
namespace {

using autograd::Variable;
using data::Batch;
using data::TaskKind;

// Captures the GradMatrix the trainer hands to the aggregator.
class SpyAggregator : public core::GradientAggregator {
 public:
  std::string name() const override { return "spy"; }
  core::AggregationResult Aggregate(
      const core::AggregationContext& ctx) override {
    const auto& g = *ctx.task_grads;
    captured_.clear();
    for (int t = 0; t < g.num_tasks(); ++t) {
      captured_.push_back(g.RowVector(t));
    }
    core::AggregationResult r;
    r.shared_grad.assign(g.dim(), 0.0f);  // freeze shared params
    r.task_weights.assign(g.num_tasks(), 0.0f);  // and heads
    return r;
  }
  std::vector<std::vector<float>> captured_;
};

TEST(TrainerGradientsTest, RowsMatchDirectAutograd) {
  Rng rng(21);
  mtl::HpsConfig cfg;
  cfg.input_dim = 5;
  cfg.shared_dims = {7, 6};
  cfg.task_output_dims = {1, 1, 1};
  mtl::HpsModel model(cfg, rng);

  std::vector<Batch> batches;
  for (int t = 0; t < 3; ++t) {
    Batch b;
    b.x = Tensor::Randn({8, 5}, rng);
    b.y = Tensor::Randn({8, 1}, rng);
    batches.push_back(b);
  }

  SpyAggregator spy;
  optim::Sgd opt(model.Parameters(), 0.1f);
  mtl::MtlTrainer trainer(
      &model, &spy, &opt,
      {TaskKind::kRegression, TaskKind::kRegression, TaskKind::kRegression},
      1);
  trainer.Step(batches);
  ASSERT_EQ(spy.captured_.size(), 3u);

  // Reference: per-task backward directly on the model.
  for (int t = 0; t < 3; ++t) {
    model.ZeroGrad();
    std::vector<Variable> inputs;
    for (int i = 0; i < 3; ++i) inputs.emplace_back(batches[i].x, false);
    auto outs = model.Forward(inputs);
    mtl::TaskLoss(TaskKind::kRegression, outs[t], batches[t]).Backward();
    int64_t off = 0;
    for (Variable* p : model.SharedParameters()) {
      const Tensor& g = p->grad();
      for (int64_t j = 0; j < g.NumElements(); ++j) {
        ASSERT_NEAR(spy.captured_[t][off + j], g[j], 1e-6)
            << "task " << t << " offset " << off + j;
      }
      off += p->NumElements();
    }
    ASSERT_EQ(off, static_cast<int64_t>(spy.captured_[t].size()));
  }
}

TEST(TrainerGradientsTest, ZeroAggregateFreezesModel) {
  // With the spy returning zero gradients and zero task weights, one Step()
  // must leave every parameter untouched.
  Rng rng(23);
  mtl::HpsConfig cfg;
  cfg.input_dim = 4;
  cfg.shared_dims = {6};
  cfg.task_output_dims = {1, 1};
  mtl::HpsModel model(cfg, rng);
  std::vector<Tensor> before;
  for (Variable* p : model.Parameters()) before.push_back(p->value().Clone());

  Batch b;
  b.x = Tensor::Randn({4, 4}, rng);
  b.y = Tensor::Randn({4, 1}, rng);
  SpyAggregator spy;
  optim::Sgd opt(model.Parameters(), 1.0f);
  mtl::MtlTrainer trainer(&model, &spy, &opt,
                          {TaskKind::kRegression, TaskKind::kRegression}, 1);
  trainer.Step({b, b});

  auto params = model.Parameters();
  for (size_t i = 0; i < params.size(); ++i) {
    for (int64_t j = 0; j < params[i]->NumElements(); ++j) {
      EXPECT_FLOAT_EQ(params[i]->value()[j], before[i][j]);
    }
  }
}

TEST(TrainerGradientsTest, MultiInputTasksGetDistinctGradients) {
  // With different per-task inputs, the per-task shared gradients must
  // differ (they come from different batches through the same trunk).
  Rng rng(29);
  mtl::HpsConfig cfg;
  cfg.input_dim = 4;
  cfg.shared_dims = {6};
  cfg.task_output_dims = {1, 1};
  mtl::HpsModel model(cfg, rng);

  Batch b1{.x = Tensor::Randn({8, 4}, rng), .y = Tensor::Randn({8, 1}, rng),
           .labels = {}};
  Batch b2{.x = Tensor::Randn({8, 4}, rng), .y = Tensor::Randn({8, 1}, rng),
           .labels = {}};
  SpyAggregator spy;
  optim::Sgd opt(model.Parameters(), 0.1f);
  mtl::MtlTrainer trainer(&model, &spy, &opt,
                          {TaskKind::kRegression, TaskKind::kRegression}, 1);
  trainer.Step({b1, b2});
  double diff = 0.0;
  for (size_t i = 0; i < spy.captured_[0].size(); ++i) {
    diff += std::fabs(spy.captured_[0][i] - spy.captured_[1][i]);
  }
  EXPECT_GT(diff, 1e-4);
}

}  // namespace
}  // namespace mocograd
