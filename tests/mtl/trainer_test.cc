#include "mtl/trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/mocograd.h"
#include "core/registry.h"
#include "mtl/hps.h"
#include "optim/optimizer.h"

namespace mocograd {
namespace {

using autograd::Variable;
using data::Batch;
using data::TaskKind;

// Builds a tiny 2-task regression problem with a known shared structure.
struct TinyProblem {
  std::unique_ptr<mtl::HpsModel> model;
  std::vector<Batch> batches;

  explicit TinyProblem(uint64_t seed) {
    Rng rng(seed);
    mtl::HpsConfig cfg;
    cfg.input_dim = 4;
    cfg.shared_dims = {8};
    cfg.task_output_dims = {1, 1};
    model = std::make_unique<mtl::HpsModel>(cfg, rng);

    Tensor x = Tensor::Randn({16, 4}, rng);
    Tensor y1(Shape{16, 1});
    Tensor y2(Shape{16, 1});
    for (int i = 0; i < 16; ++i) {
      y1[i] = x.At(i, 0) + 0.5f * x.At(i, 1);
      y2[i] = x.At(i, 0) - 0.5f * x.At(i, 2);
    }
    batches = {Batch{.x = x, .y = y1, .labels = {}},
               Batch{.x = x, .y = y2, .labels = {}}};
  }
};

TEST(TaskLossTest, SelectsCorrectLoss) {
  Tensor pred2 = Tensor::Zeros({2, 1});
  Batch reg{.x = Tensor(), .y = Tensor::Ones({2, 1}), .labels = {}};
  EXPECT_NEAR(mtl::TaskLoss(TaskKind::kRegression, Variable(pred2, false),
                            reg)
                  .value()
                  .Item(),
              1.0f, 1e-6);
  EXPECT_NEAR(mtl::TaskLoss(TaskKind::kRegressionL1, Variable(pred2, false),
                            reg)
                  .value()
                  .Item(),
              1.0f, 1e-6);
  EXPECT_NEAR(mtl::TaskLoss(TaskKind::kRegressionMae, Variable(pred2, false),
                            reg)
                  .value()
                  .Item(),
              1.0f, 1e-6);  // trained with MSE; 1^2 == 1
  EXPECT_NEAR(mtl::TaskLoss(TaskKind::kBinaryLogistic,
                            Variable(pred2, false), reg)
                  .value()
                  .Item(),
              std::log(2.0f), 1e-5);

  Batch cls{.x = Tensor(), .y = Tensor(), .labels = {0, 1}};
  Tensor logits = Tensor::Zeros({2, 3});
  EXPECT_NEAR(mtl::TaskLoss(TaskKind::kClassification,
                            Variable(logits, false), cls)
                  .value()
                  .Item(),
              std::log(3.0f), 1e-5);

  Batch px{.x = Tensor(), .y = Tensor(), .labels = {0, 1, 2, 0}};
  Tensor maps = Tensor::Zeros({1, 3, 2, 2});
  EXPECT_NEAR(mtl::TaskLoss(TaskKind::kPixelClassification,
                            Variable(maps, false), px)
                  .value()
                  .Item(),
              std::log(3.0f), 1e-5);
}

TEST(MtlTrainerTest, StepReducesLosses) {
  TinyProblem prob(1);
  core::EqualWeight agg;
  optim::Adam opt(prob.model->Parameters(), 5e-2f);
  mtl::MtlTrainer trainer(prob.model.get(), &agg, &opt,
                          {TaskKind::kRegression, TaskKind::kRegression}, 3);
  auto first = trainer.Step(prob.batches);
  mtl::StepStats last;
  for (int i = 0; i < 120; ++i) last = trainer.Step(prob.batches);
  EXPECT_LT(last.losses[0], first.losses[0] * 0.2f);
  EXPECT_LT(last.losses[1], first.losses[1] * 0.2f);
  EXPECT_EQ(trainer.steps_done(), 121);
}

TEST(MtlTrainerTest, PhaseTimesCoverTheStep) {
  TinyProblem prob(11);
  core::EqualWeight agg;
  optim::Adam opt(prob.model->Parameters(), 1e-2f);
  mtl::MtlTrainer trainer(prob.model.get(), &agg, &opt,
                          {TaskKind::kRegression, TaskKind::kRegression}, 3);
  mtl::StepStats stats = trainer.Step(prob.batches);
  const mtl::StepPhaseTimes& ph = stats.phase;
  // The load-bearing phases of even a tiny step take measurable time...
  EXPECT_GT(ph.forward, 0.0);
  EXPECT_GT(ph.backward, 0.0);
  EXPECT_GT(ph.Total(), 0.0);
  // ...and no bucket can be negative.
  for (double v : {ph.forward, ph.backward, ph.flatten, ph.conflict_stats,
                   ph.aggregate, ph.write_back, ph.clip, ph.optimizer}) {
    EXPECT_GE(v, 0.0);
  }
  // No clipping configured → the clip phase never ran.
  EXPECT_EQ(ph.clip, 0.0);
}

TEST(MtlTrainerTest, ConflictStatsToggleOnlyAffectsReporting) {
  TinyProblem prob_a(17);
  TinyProblem prob_b(17);
  core::EqualWeight agg_a, agg_b;
  optim::Adam opt_a(prob_a.model->Parameters(), 1e-2f);
  optim::Adam opt_b(prob_b.model->Parameters(), 1e-2f);
  mtl::MtlTrainer on(prob_a.model.get(), &agg_a, &opt_a,
                     {TaskKind::kRegression, TaskKind::kRegression}, 3);
  mtl::MtlTrainer off(prob_b.model.get(), &agg_b, &opt_b,
                      {TaskKind::kRegression, TaskKind::kRegression}, 3);
  EXPECT_TRUE(on.conflict_stats_enabled());
  off.set_conflict_stats_enabled(false);
  EXPECT_FALSE(off.conflict_stats_enabled());

  for (int i = 0; i < 5; ++i) {
    mtl::StepStats sa = on.Step(prob_a.batches);
    mtl::StepStats sb = off.Step(prob_b.batches);
    // Training is bit-identical with the analysis pass off...
    ASSERT_EQ(sa.losses.size(), sb.losses.size());
    for (size_t t = 0; t < sa.losses.size(); ++t) {
      EXPECT_EQ(sa.losses[t], sb.losses[t]);
    }
    // ...only the reported stats differ.
    EXPECT_EQ(sb.conflicts.mean_gcd, 0.0);
    EXPECT_EQ(sb.conflicts.num_conflicting_pairs, 0);
    EXPECT_EQ(sb.phase.conflict_stats, 0.0);
  }
}

TEST(MtlTrainerTest, AggregatorSubPhasesReported) {
  TinyProblem prob(23);
  core::MoCoGrad agg;
  optim::Adam opt(prob.model->Parameters(), 1e-2f);
  mtl::MtlTrainer trainer(prob.model.get(), &agg, &opt,
                          {TaskKind::kRegression, TaskKind::kRegression}, 3);
  mtl::StepStats stats = trainer.Step(prob.batches);
  // MoCoGrad fills its calibration sub-phases through ctx.profile.
  EXPECT_FALSE(stats.phase.aggregator.empty());
  EXPECT_GE(stats.phase.aggregator.Get("calibrate"), 0.0);
  EXPECT_LE(stats.phase.aggregator.Total(), stats.phase.aggregate + 1e-6);
}

TEST(MtlTrainerTest, EwStepMatchesPlainJointBackward) {
  // The trainer with EqualWeight must produce exactly the same parameter
  // update as naive backprop through the summed loss.
  TinyProblem a(7), b(7);
  // Trainer path.
  core::EqualWeight agg;
  optim::Sgd opt_a(a.model->Parameters(), 0.1f);
  mtl::MtlTrainer trainer(a.model.get(), &agg, &opt_a,
                          {TaskKind::kRegression, TaskKind::kRegression}, 3);
  trainer.Step(a.batches);

  // Manual path on an identical model.
  b.model->ZeroGrad();
  std::vector<Variable> inputs = {Variable(b.batches[0].x, false),
                                  Variable(b.batches[1].x, false)};
  auto outs = b.model->Forward(inputs);
  auto l1 = mtl::TaskLoss(TaskKind::kRegression, outs[0], b.batches[0]);
  auto l2 = mtl::TaskLoss(TaskKind::kRegression, outs[1], b.batches[1]);
  l1.Backward();
  l2.Backward();
  optim::Sgd opt_b(b.model->Parameters(), 0.1f);
  opt_b.Step();

  auto pa = a.model->Parameters();
  auto pb = b.model->Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i]->NumElements(); ++j) {
      EXPECT_NEAR(pa[i]->value()[j], pb[i]->value()[j], 1e-6)
          << "param " << i << " elem " << j;
    }
  }
}

TEST(MtlTrainerTest, TaskWeightsScaleTaskSpecificGrads) {
  // An aggregator with task weight 0 for task 1 must freeze task 1's head.
  class ZeroSecondTask : public core::GradientAggregator {
   public:
    std::string name() const override { return "zero2"; }
    core::AggregationResult Aggregate(
        const core::AggregationContext& ctx) override {
      core::AggregationResult r;
      r.shared_grad = ctx.task_grads->SumRows();
      r.task_weights = {1.0f, 0.0f};
      return r;
    }
  };
  TinyProblem prob(11);
  auto head1_before = prob.model->TaskParameters(1)[0]->value().Clone();
  ZeroSecondTask agg;
  optim::Sgd opt(prob.model->Parameters(), 0.1f);
  mtl::MtlTrainer trainer(prob.model.get(), &agg, &opt,
                          {TaskKind::kRegression, TaskKind::kRegression}, 3);
  trainer.Step(prob.batches);
  const Tensor& head1_after = prob.model->TaskParameters(1)[0]->value();
  for (int64_t i = 0; i < head1_after.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(head1_after[i], head1_before[i]);
  }
}

TEST(MtlTrainerTest, ConflictStatsReported) {
  TinyProblem prob(13);
  core::MoCoGrad agg;
  optim::Adam opt(prob.model->Parameters(), 1e-2f);
  mtl::MtlTrainer trainer(prob.model.get(), &agg, &opt,
                          {TaskKind::kRegression, TaskKind::kRegression}, 3);
  auto stats = trainer.Step(prob.batches);
  EXPECT_EQ(stats.conflicts.num_pairs, 1);
  EXPECT_GE(stats.backward_seconds, 0.0);
  EXPECT_EQ(stats.losses.size(), 2u);
}

TEST(MtlTrainerTest, PredictMatchesForwardValues) {
  TinyProblem prob(17);
  core::EqualWeight agg;
  optim::Adam opt(prob.model->Parameters(), 1e-2f);
  mtl::MtlTrainer trainer(prob.model.get(), &agg, &opt,
                          {TaskKind::kRegression, TaskKind::kRegression}, 3);
  auto preds = trainer.Predict(prob.batches);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].shape(), (Shape{16, 1}));
  // Predict must not mutate parameters or leave gradients behind.
  auto preds2 = trainer.Predict(prob.batches);
  for (int64_t i = 0; i < preds[0].NumElements(); ++i) {
    EXPECT_FLOAT_EQ(preds[0][i], preds2[0][i]);
  }
}

TEST(MtlTrainerTest, MismatchedBatchCountAborts) {
  TinyProblem prob(19);
  core::EqualWeight agg;
  optim::Adam opt(prob.model->Parameters(), 1e-2f);
  mtl::MtlTrainer trainer(prob.model.get(), &agg, &opt,
                          {TaskKind::kRegression, TaskKind::kRegression}, 3);
  std::vector<Batch> one = {prob.batches[0]};
  EXPECT_DEATH(trainer.Step(one), "one batch per task");
}

}  // namespace
}  // namespace mocograd
