#include "mtl/watchdog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace mocograd {
namespace mtl {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

WatchdogOptions FastOptions() {
  WatchdogOptions opts;
  opts.warmup_steps = 2;
  return opts;
}

TEST(WatchdogTest, HealthyRunStaysQuiet) {
  TrainingWatchdog wd(FastOptions());
  for (int step = 0; step < 50; ++step) {
    const float l = 2.0f - 0.01f * step;
    auto events = wd.Observe(step, {l, l * 0.5f}, {0.1f, -0.2f, 0.3f});
    EXPECT_TRUE(events.empty()) << "step " << step;
  }
}

TEST(WatchdogTest, FlagsNonFiniteLossPerTask) {
  TrainingWatchdog wd(FastOptions());
  auto events = wd.Observe(0, {1.0f, kNan, kInf}, {0.1f});
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, "nonfinite_loss");
  EXPECT_EQ(events[0].task, 1);
  EXPECT_EQ(events[1].kind, "nonfinite_loss");
  EXPECT_EQ(events[1].task, 2);
}

TEST(WatchdogTest, FlagsNonFiniteGradient) {
  TrainingWatchdog wd(FastOptions());
  auto events = wd.Observe(0, {1.0f}, {0.1f, kNan, kNan, 0.2f});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "nonfinite_grad");
  EXPECT_EQ(events[0].task, -1);
  EXPECT_EQ(events[0].value, 2.0);  // two poisoned coordinates
}

TEST(WatchdogTest, FlagsLossDivergenceOnlyAfterWarmup) {
  WatchdogOptions opts = FastOptions();
  opts.loss_divergence_factor = 10.0;
  TrainingWatchdog wd(opts);
  // Before warmup a huge loss does not trip the divergence detector.
  EXPECT_TRUE(wd.Observe(0, {1.0f}, {0.1f}).empty());
  EXPECT_TRUE(wd.Observe(1, {1e6f}, {0.1f}).empty());
  // After warmup, exceeding factor × running-min does.
  EXPECT_TRUE(wd.Observe(2, {1.5f}, {0.1f}).empty());
  auto events = wd.Observe(3, {50.0f}, {0.1f});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "loss_divergence");
  EXPECT_EQ(events[0].task, 0);
  EXPECT_EQ(events[0].value, 50.0);
}

TEST(WatchdogTest, FlagsGradientExplosionAgainstEma) {
  WatchdogOptions opts = FastOptions();
  opts.grad_explosion_factor = 10.0;
  TrainingWatchdog wd(opts);
  EXPECT_TRUE(wd.Observe(0, {1.0f}, {1.0f}).empty());
  EXPECT_TRUE(wd.Observe(1, {1.0f}, {1.0f}).empty());
  EXPECT_TRUE(wd.Observe(2, {1.0f}, {1.0f}).empty());
  auto events = wd.Observe(3, {1.0f}, {100.0f});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "grad_explosion");
  EXPECT_EQ(events[0].value, 100.0);
  EXPECT_GT(events[0].threshold, 0.0);
}

TEST(WatchdogTest, DisabledWatchdogReportsNothing) {
  WatchdogOptions opts = FastOptions();
  opts.enabled = false;
  TrainingWatchdog wd(opts);
  EXPECT_TRUE(wd.Observe(0, {kNan}, {kNan}).empty());
}

TEST(WatchdogTest, ResetClearsRunningState) {
  WatchdogOptions opts = FastOptions();
  opts.loss_divergence_factor = 10.0;
  TrainingWatchdog wd(opts);
  for (int step = 0; step < 5; ++step) {
    wd.Observe(step, {1.0f}, {1.0f});
  }
  wd.Reset();
  // Fresh state: a big loss right after Reset is within warmup again.
  EXPECT_TRUE(wd.Observe(0, {1000.0f}, {1.0f}).empty());
}

}  // namespace
}  // namespace mtl
}  // namespace mocograd
