#include <gtest/gtest.h>

#include <memory>

#include "autograd/ops.h"
#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/embedding.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/sequential.h"
#include "testing/gradcheck.h"

namespace mocograd {
namespace {

using autograd::Variable;
namespace ag = autograd;

TEST(InitTest, GlorotUniformRange) {
  Rng rng(1);
  Tensor w = nn::GlorotUniform({100, 50}, 100, 50, rng);
  const float a = std::sqrt(6.0f / 150.0f);
  float mx = 0.0f;
  for (int64_t i = 0; i < w.NumElements(); ++i) {
    mx = std::max(mx, std::fabs(w[i]));
  }
  EXPECT_LE(mx, a);
  EXPECT_GT(mx, 0.5f * a);  // not degenerate
}

TEST(InitTest, HeNormalVariance) {
  Rng rng(2);
  Tensor w = nn::HeNormal({200, 100}, 200, rng);
  double var = 0.0;
  for (int64_t i = 0; i < w.NumElements(); ++i) var += double(w[i]) * w[i];
  var /= w.NumElements();
  EXPECT_NEAR(var, 2.0 / 200.0, 2e-3);
}

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(3);
  nn::Linear fc(4, 3, rng);
  Variable x(Tensor::Ones({2, 4}), false);
  Variable y = fc.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_EQ(fc.Parameters().size(), 2u);
  EXPECT_EQ(fc.NumParameters(), 4 * 3 + 3);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(4);
  nn::Linear fc(4, 3, rng, /*bias=*/false);
  EXPECT_EQ(fc.Parameters().size(), 1u);
  EXPECT_EQ(fc.bias(), nullptr);
}

TEST(LinearTest, GradientFlowsToWeightAndBias) {
  Rng rng(5);
  nn::Linear fc(3, 2, rng);
  Variable x(Tensor::Ones({4, 3}), false);
  Variable loss = ag::MeanAll(fc.Forward(x));
  loss.Backward();
  EXPECT_TRUE(fc.weight()->has_grad());
  EXPECT_TRUE(fc.bias()->has_grad());
  // d mean / d bias_j = 1/ (4*2) * 4 = 0.5
  EXPECT_NEAR(fc.bias()->grad()[0], 0.5f, 1e-5);
}

TEST(EmbeddingTest, LookupAndScatterGrad) {
  Rng rng(6);
  nn::Embedding emb(10, 4, rng);
  Variable out = emb.Forward({3, 3, 7});
  EXPECT_EQ(out.shape(), (Shape{3, 4}));
  ag::SumAll(out).Backward();
  const Tensor& g = emb.table()->grad();
  EXPECT_FLOAT_EQ(g.At(3, 0), 2.0f);
  EXPECT_FLOAT_EQ(g.At(7, 0), 1.0f);
  EXPECT_FLOAT_EQ(g.At(0, 0), 0.0f);
}

TEST(MlpTest, HiddenReluShapes) {
  Rng rng(7);
  nn::Mlp mlp({5, 8, 8, 2}, rng);
  Variable x(Tensor::Ones({3, 5}), false);
  Variable y = mlp.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  EXPECT_EQ(mlp.Parameters().size(), 6u);  // 3 layers x (W, b)
}

TEST(MlpTest, CanFitLinearFunction) {
  // Tiny sanity training: y = 2x - 1 with plain SGD on MSE.
  Rng rng(8);
  nn::Mlp mlp({1, 16, 1}, rng);
  Tensor xs(Shape{32, 1});
  Tensor ys(Shape{32, 1});
  for (int i = 0; i < 32; ++i) {
    xs[i] = -1.0f + 2.0f * i / 31.0f;
    ys[i] = 2.0f * xs[i] - 1.0f;
  }
  auto params = mlp.Parameters();
  float last = 1e9f;
  for (int epoch = 0; epoch < 300; ++epoch) {
    mlp.ZeroGrad();
    Variable loss = ag::MseLoss(mlp.Forward(Variable(xs, false)), ys);
    loss.Backward();
    for (Variable* p : params) {
      if (!p->has_grad()) continue;
      tops::Axpy(-0.05f, p->grad(), p->mutable_value());
    }
    last = loss.value().Item();
  }
  EXPECT_LT(last, 1e-2f);
}

TEST(SequentialTest, ChainsLayers) {
  Rng rng(9);
  nn::Sequential seq;
  seq.Add(std::make_unique<nn::Linear>(4, 8, rng));
  seq.Add(std::make_unique<nn::ReluLayer>());
  seq.Add(std::make_unique<nn::Linear>(8, 2, rng));
  EXPECT_EQ(seq.size(), 3);
  Variable y = seq.Forward(Variable(Tensor::Ones({5, 4}), false));
  EXPECT_EQ(y.shape(), (Shape{5, 2}));
  EXPECT_EQ(seq.Parameters().size(), 4u);
}

TEST(Conv2dLayerTest, ShapeAndGradcheck) {
  Rng rng(10);
  nn::Conv2d conv(2, 4, 3, 1, 1, rng);
  Variable x(Tensor::Randn({1, 2, 6, 6}, rng, 0.0f, 0.5f), true);
  Variable y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 6, 6}));
  ag::MeanAll(y).Backward();
  EXPECT_TRUE(x.has_grad());
  for (Variable* p : conv.Parameters()) EXPECT_TRUE(p->has_grad());
}

TEST(Conv2dLayerTest, StridedOutputShape) {
  Rng rng(11);
  nn::Conv2d conv(1, 2, 3, 2, 1, rng);
  Variable x(Tensor::Zeros({2, 1, 8, 8}), false);
  EXPECT_EQ(conv.Forward(x).shape(), (Shape{2, 2, 4, 4}));
}

TEST(ModuleTest, ParameterOrderIsDeterministic) {
  Rng rng1(12), rng2(12);
  nn::Mlp m1({3, 4, 2}, rng1);
  nn::Mlp m2({3, 4, 2}, rng2);
  auto p1 = m1.Parameters();
  auto p2 = m2.Parameters();
  ASSERT_EQ(p1.size(), p2.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    ASSERT_EQ(p1[i]->shape(), p2[i]->shape());
    for (int64_t j = 0; j < p1[i]->NumElements(); ++j) {
      EXPECT_FLOAT_EQ(p1[i]->value()[j], p2[i]->value()[j]);
    }
  }
}

}  // namespace
}  // namespace mocograd
