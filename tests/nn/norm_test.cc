#include "nn/norm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/ops.h"
#include "testing/gradcheck.h"

namespace mocograd {
namespace {

using autograd::Variable;
namespace ag = autograd;

TEST(LayerNormTest, NormalizesRows) {
  nn::LayerNorm ln(4);
  Tensor x = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  Variable y = ln.Forward(Variable(x, false));
  // With γ=1, β=0 each output row has mean ≈ 0 and variance ≈ 1.
  for (int r = 0; r < 2; ++r) {
    double mean = 0.0, var = 0.0;
    for (int c = 0; c < 4; ++c) mean += y.value().At(r, c);
    mean /= 4;
    for (int c = 0; c < 4; ++c) {
      var += (y.value().At(r, c) - mean) * (y.value().At(r, c) - mean);
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, GammaBetaAffineApplied) {
  nn::LayerNorm ln(2);
  ln.gamma()->mutable_value().Fill(3.0f);
  ln.beta()->mutable_value().Fill(-1.0f);
  Tensor x = Tensor::FromVector({1, 2}, {0, 2});  // normalized: {-1, +1}
  Variable y = ln.Forward(Variable(x, false));
  EXPECT_NEAR(y.value()[0], -4.0f, 1e-3);
  EXPECT_NEAR(y.value()[1], 2.0f, 1e-3);
}

TEST(LayerNormTest, GradcheckThroughNormalization) {
  Rng rng(41);
  nn::LayerNorm ln(5);
  Tensor x = Tensor::Randn({3, 5}, rng);
  Tensor w = Tensor::Randn({3, 5}, rng);
  testing::ExpectGradientsClose(
      [&](const std::vector<Variable>& v) {
        return ag::MeanAll(ag::Mul(ln.Forward(v[0]), Variable(w, false)));
      },
      {x});
}

TEST(LayerNormTest, ParametersReceiveGradients) {
  Rng rng(43);
  nn::LayerNorm ln(3);
  Variable x(Tensor::Randn({4, 3}, rng), true);
  ag::MeanAll(ag::Mul(ln.Forward(x), ln.Forward(x))).Backward();
  EXPECT_TRUE(ln.gamma()->has_grad());
  EXPECT_TRUE(ln.beta()->has_grad());
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(47);
  nn::Dropout drop(0.5f, rng);
  drop.set_training(false);
  Tensor x = Tensor::Randn({4, 4}, rng);
  Variable y = drop.Forward(Variable(x, false));
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(y.value()[i], x[i]);
  }
}

TEST(DropoutTest, TrainingZerosAndRescales) {
  Rng rng(53);
  nn::Dropout drop(0.5f, rng);
  Tensor x = Tensor::Ones({100, 10});
  Variable y = drop.Forward(Variable(x, false));
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.NumElements(); ++i) {
    const float v = y.value()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6);
    if (v == 0.0f) ++zeros;
  }
  // ~50% dropped.
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
  // Expectation preserved: mean ≈ 1.
  double mean = 0.0;
  for (int64_t i = 0; i < y.NumElements(); ++i) mean += y.value()[i];
  EXPECT_NEAR(mean / y.NumElements(), 1.0, 0.12);
}

TEST(DropoutTest, MaskBlocksGradient) {
  Rng rng(59);
  nn::Dropout drop(0.5f, rng);
  Variable x(Tensor::Ones({50, 1}), true);
  Variable y = drop.Forward(x);
  ag::SumAll(y).Backward();
  for (int64_t i = 0; i < 50; ++i) {
    // Gradient matches the mask: 0 where dropped, 2 where kept.
    EXPECT_TRUE(x.grad()[i] == 0.0f || std::fabs(x.grad()[i] - 2.0f) < 1e-6);
    EXPECT_FLOAT_EQ(x.grad()[i], y.value()[i]);
  }
}

TEST(DropoutTest, ZeroProbabilityIsIdentityEvenInTraining) {
  Rng rng(61);
  nn::Dropout drop(0.0f, rng);
  Tensor x = Tensor::Randn({3, 3}, rng);
  Variable y = drop.Forward(Variable(x, false));
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(y.value()[i], x[i]);
  }
}

}  // namespace
}  // namespace mocograd
