#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "autograd/ops.h"
#include "nn/conv.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/norm.h"

namespace mocograd {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng1(1), rng2(2);
  nn::Mlp a({4, 8, 2}, rng1);
  nn::Mlp b({4, 8, 2}, rng2);  // different init

  const std::string path = TempPath("mlp.ckpt");
  ASSERT_TRUE(nn::SaveParameters(a, path).ok());
  ASSERT_TRUE(nn::LoadParameters(b, path).ok());

  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i]->NumElements(); ++j) {
      EXPECT_FLOAT_EQ(pa[i]->value()[j], pb[i]->value()[j]);
    }
  }

  // Loaded model computes identical outputs.
  Rng rng3(3);
  Tensor x = Tensor::Randn({5, 4}, rng3);
  auto ya = a.Forward(autograd::Variable(x, false));
  auto yb = b.Forward(autograd::Variable(x, false));
  for (int64_t i = 0; i < ya.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(ya.value()[i], yb.value()[i]);
  }
  std::remove(path.c_str());
}

// Round-trips one layer type: save `a`, load into a differently-initialized
// `b`, expect identical parameter bits.
template <typename LayerT>
void ExpectRoundTrip(LayerT& a, LayerT& b, const char* file) {
  const std::string path = TempPath(file);
  ASSERT_TRUE(nn::SaveParameters(a, path).ok());
  ASSERT_TRUE(nn::LoadParameters(b, path).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  ASSERT_FALSE(pa.empty());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->NumElements(), pb[i]->NumElements());
    for (int64_t j = 0; j < pa[i]->NumElements(); ++j) {
      EXPECT_EQ(pa[i]->value()[j], pb[i]->value()[j]) << file << " param "
                                                      << i << " elem " << j;
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LinearRoundTrip) {
  Rng rng1(10), rng2(11);
  nn::Linear a(6, 3, rng1);
  nn::Linear b(6, 3, rng2);
  ExpectRoundTrip(a, b, "linear.ckpt");
}

TEST(SerializeTest, EmbeddingRoundTrip) {
  Rng rng1(12), rng2(13);
  nn::Embedding a(9, 4, rng1);
  nn::Embedding b(9, 4, rng2);
  ExpectRoundTrip(a, b, "embedding.ckpt");
}

TEST(SerializeTest, Conv2dRoundTrip) {
  Rng rng1(14), rng2(15);
  nn::Conv2d a(2, 3, 3, 1, 1, rng1);
  nn::Conv2d b(2, 3, 3, 1, 1, rng2);
  ExpectRoundTrip(a, b, "conv.ckpt");
}

TEST(SerializeTest, LayerNormRoundTrip) {
  nn::LayerNorm a(5);
  nn::LayerNorm b(5);
  // Identity init on both sides would vacuously pass — perturb `a` first.
  Rng rng(16);
  for (autograd::Variable* p : a.Parameters()) {
    Tensor& t = p->mutable_value();
    for (int64_t i = 0; i < t.NumElements(); ++i) t[i] += rng.Uniform();
  }
  ExpectRoundTrip(a, b, "norm.ckpt");
}

TEST(SerializeTest, TruncatedFileRejected) {
  // A checkpoint cut off mid-payload must fail cleanly, not read garbage.
  Rng rng(17);
  nn::Mlp a({4, 8, 2}, rng);
  const std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(nn::SaveParameters(a, path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(full, 32);
  std::error_code ec;
  std::filesystem::resize_file(path, static_cast<uintmax_t>(full / 2), ec);
  ASSERT_FALSE(ec) << ec.message();

  nn::Mlp b({4, 8, 2}, rng);
  auto s = nn::LoadParameters(b, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  Rng rng(1);
  nn::Mlp m({2, 2}, rng);
  auto s = nn::LoadParameters(m, TempPath("does_not_exist.ckpt"));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(SerializeTest, ArchitectureMismatchRejected) {
  Rng rng(1);
  nn::Mlp small({2, 2}, rng);
  nn::Mlp big({2, 4, 2}, rng);
  const std::string path = TempPath("small.ckpt");
  ASSERT_TRUE(nn::SaveParameters(small, path).ok());
  auto s = nn::LoadParameters(big, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(1);
  nn::Mlp a({2, 3}, rng);
  nn::Mlp b({3, 2}, rng);  // same param count, different shapes
  const std::string path = TempPath("shape.ckpt");
  ASSERT_TRUE(nn::SaveParameters(a, path).ok());
  auto s = nn::LoadParameters(b, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptHeaderRejected) {
  const std::string path = TempPath("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "not a checkpoint";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  Rng rng(1);
  nn::Mlp m({2, 2}, rng);
  auto s = nn::LoadParameters(m, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mocograd
