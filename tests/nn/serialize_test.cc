#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "autograd/ops.h"
#include "nn/mlp.h"

namespace mocograd {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng1(1), rng2(2);
  nn::Mlp a({4, 8, 2}, rng1);
  nn::Mlp b({4, 8, 2}, rng2);  // different init

  const std::string path = TempPath("mlp.ckpt");
  ASSERT_TRUE(nn::SaveParameters(a, path).ok());
  ASSERT_TRUE(nn::LoadParameters(b, path).ok());

  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    for (int64_t j = 0; j < pa[i]->NumElements(); ++j) {
      EXPECT_FLOAT_EQ(pa[i]->value()[j], pb[i]->value()[j]);
    }
  }

  // Loaded model computes identical outputs.
  Rng rng3(3);
  Tensor x = Tensor::Randn({5, 4}, rng3);
  auto ya = a.Forward(autograd::Variable(x, false));
  auto yb = b.Forward(autograd::Variable(x, false));
  for (int64_t i = 0; i < ya.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(ya.value()[i], yb.value()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  Rng rng(1);
  nn::Mlp m({2, 2}, rng);
  auto s = nn::LoadParameters(m, TempPath("does_not_exist.ckpt"));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(SerializeTest, ArchitectureMismatchRejected) {
  Rng rng(1);
  nn::Mlp small({2, 2}, rng);
  nn::Mlp big({2, 4, 2}, rng);
  const std::string path = TempPath("small.ckpt");
  ASSERT_TRUE(nn::SaveParameters(small, path).ok());
  auto s = nn::LoadParameters(big, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(1);
  nn::Mlp a({2, 3}, rng);
  nn::Mlp b({3, 2}, rng);  // same param count, different shapes
  const std::string path = TempPath("shape.ckpt");
  ASSERT_TRUE(nn::SaveParameters(a, path).ok());
  auto s = nn::LoadParameters(b, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptHeaderRejected) {
  const std::string path = TempPath("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "not a checkpoint";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  Rng rng(1);
  nn::Mlp m({2, 2}, rng);
  auto s = nn::LoadParameters(m, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mocograd
