#include "obs/json.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace mocograd {
namespace obs {
namespace {

TEST(ValidateJsonTest, AcceptsWellFormedValues) {
  for (const char* text : {
           "{}",
           "[]",
           "null",
           "true",
           "false",
           "0",
           "-1.5e-3",
           "\"str with \\\" escape and \\u00e9\"",
           "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
           "  [1, 2, 3]  ",
       }) {
    EXPECT_TRUE(ValidateJson(text).ok()) << text;
  }
}

TEST(ValidateJsonTest, RejectsMalformedValues) {
  for (const char* text : {
           "",
           "{",
           "}",
           "[1,]",
           "{\"a\":}",
           "{\"a\" 1}",
           "{'a':1}",
           "nul",
           "01",
           "1.",
           "\"unterminated",
           "\"bad escape \\q\"",
           "{} trailing",
           "[1] [2]",
           "+1",
           "NaN",
       }) {
    EXPECT_FALSE(ValidateJson(text).ok()) << text;
  }
}

TEST(ValidateJsonTest, RejectsExcessiveNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ValidateJson(deep).ok());
}

TEST(ValidateJsonTest, AcceptsReasonableNesting) {
  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_TRUE(ValidateJson(ok).ok());
}

TEST(ParseJsonTest, BuildsDomForTelemetryShapedRecord) {
  Result<JsonValue> parsed = ParseJson(
      "{\"type\":\"step\",\"step\":12,\"losses\":[1.5,null],"
      "\"gcd\":{\"mean\":0.25},\"ok\":true,\"name\":\"mocograd\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& v = parsed.value();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.StringOr("type", ""), "step");
  EXPECT_EQ(v.NumberOr("step", -1), 12.0);
  const JsonValue* losses = v.Find("losses");
  ASSERT_NE(losses, nullptr);
  ASSERT_TRUE(losses->is_array());
  ASSERT_EQ(losses->items.size(), 2u);
  EXPECT_EQ(losses->items[0].number_value, 1.5);
  EXPECT_TRUE(losses->items[1].is_null());
  ASSERT_NE(v.Find("gcd"), nullptr);
  EXPECT_EQ(v.Find("gcd")->NumberOr("mean", 0), 0.25);
  ASSERT_NE(v.Find("ok"), nullptr);
  EXPECT_TRUE(v.Find("ok")->bool_value);
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_EQ(v.NumberOr("missing", -3.0), -3.0);
  EXPECT_EQ(v.StringOr("step", "fb"), "fb");  // wrong type → fallback
}

TEST(ParseJsonTest, DecodesEscapesIncludingSurrogatePairs) {
  Result<JsonValue> parsed =
      ParseJson("\"a\\n\\t\\\"\\\\ \\u00e9 \\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().string_value,
            "a\n\t\"\\ \xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(ParseJsonTest, KeepsObjectMembersInSourceOrder) {
  Result<JsonValue> parsed = ParseJson("{\"z\":1,\"a\":2,\"m\":3}");
  ASSERT_TRUE(parsed.ok());
  const auto& members = parsed.value().members;
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

TEST(JsonHelpersTest, NumberFormattingRoundTrips) {
  std::string out;
  AppendJsonNumber(&out, 3.0);
  out += " ";
  AppendJsonNumber(&out, 0.1);
  out += " ";
  AppendJsonNumber(&out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out.substr(0, 2), "3 ");
  EXPECT_NE(out.find("0.1"), std::string::npos);
  EXPECT_NE(out.find("null"), std::string::npos);

  std::string esc;
  AppendJsonString(&esc, "a\"b\\c\nd");
  EXPECT_EQ(esc, "\"a\\\"b\\\\c\\u000ad\"");
}

}  // namespace
}  // namespace obs
}  // namespace mocograd
