#include "obs/json.h"

#include <gtest/gtest.h>

#include <string>

namespace mocograd {
namespace obs {
namespace {

TEST(ValidateJsonTest, AcceptsWellFormedValues) {
  for (const char* text : {
           "{}",
           "[]",
           "null",
           "true",
           "false",
           "0",
           "-1.5e-3",
           "\"str with \\\" escape and \\u00e9\"",
           "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}",
           "  [1, 2, 3]  ",
       }) {
    EXPECT_TRUE(ValidateJson(text).ok()) << text;
  }
}

TEST(ValidateJsonTest, RejectsMalformedValues) {
  for (const char* text : {
           "",
           "{",
           "}",
           "[1,]",
           "{\"a\":}",
           "{\"a\" 1}",
           "{'a':1}",
           "nul",
           "01",
           "1.",
           "\"unterminated",
           "\"bad escape \\q\"",
           "{} trailing",
           "[1] [2]",
           "+1",
           "NaN",
       }) {
    EXPECT_FALSE(ValidateJson(text).ok()) << text;
  }
}

TEST(ValidateJsonTest, RejectsExcessiveNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ValidateJson(deep).ok());
}

TEST(ValidateJsonTest, AcceptsReasonableNesting) {
  std::string ok(100, '[');
  ok += std::string(100, ']');
  EXPECT_TRUE(ValidateJson(ok).ok());
}

}  // namespace
}  // namespace obs
}  // namespace mocograd
