#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace mocograd {
namespace obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    MetricsRegistry::Global().ResetAll();
  }
  void TearDown() override {
    MetricsRegistry::Global().ResetAll();
    SetMetricsEnabled(false);
  }
};

TEST_F(MetricsTest, CounterAddsAtomically) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.counter");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < 1000; ++i) c->Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), 4000);
}

TEST_F(MetricsTest, DisabledMacroSkipsCounting) {
  SetMetricsEnabled(false);
  MG_METRIC_COUNT("test.gated", 5);
  SetMetricsEnabled(true);
  MG_METRIC_COUNT("test.gated", 2);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("test.gated")->value(), 2);
}

TEST_F(MetricsTest, RegistryReturnsStablePointers) {
  Counter* a = MetricsRegistry::Global().GetCounter("test.stable");
  Counter* b = MetricsRegistry::Global().GetCounter("test.stable");
  EXPECT_EQ(a, b);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(3.5);
  g->Set(-1.25);
  EXPECT_DOUBLE_EQ(g->value(), -1.25);
}

TEST_F(MetricsTest, HistogramBasicStats) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist");
  for (double v : {1.0, 2.0, 3.0, 4.0}) h->Record(v);
  EXPECT_EQ(h->count(), 4);
  EXPECT_DOUBLE_EQ(h->sum(), 10.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 4.0);
}

TEST_F(MetricsTest, HistogramPercentilesClampToObservedRange) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist_pct");
  for (int i = 0; i < 100; ++i) h->Record(1.0);
  // Every sample is 1.0: any percentile must clamp to the observed value
  // despite the factor-of-2 bucket resolution.
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 1.0);
}

TEST_F(MetricsTest, HistogramPercentileOrdering) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist_order");
  // 90 small samples, 10 large ones: p50 must land near the small mode and
  // p99 near the large one (buckets are factor-of-2, so assert ranges).
  for (int i = 0; i < 90; ++i) h->Record(1e-3);
  for (int i = 0; i < 10; ++i) h->Record(1.0);
  const double p50 = h->Percentile(0.5);
  const double p99 = h->Percentile(0.99);
  EXPECT_GE(p50, 1e-3 / 2);
  EXPECT_LE(p50, 1e-3 * 2);
  EXPECT_GE(p99, 0.5);
  EXPECT_LE(p99, 1.0);
  EXPECT_LT(p50, p99);
}

TEST_F(MetricsTest, HistogramIgnoresSignOfBadSamples) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.hist_neg");
  h->Record(-5.0);  // clamped to 0
  EXPECT_EQ(h->count(), 1);
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
}

TEST_F(MetricsTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry::Global().GetCounter("test.z_counter")->Add(7);
  MetricsRegistry::Global().GetCounter("test.a_counter")->Add(3);
  auto snap = MetricsRegistry::Global().SnapshotCounters();
  std::string prev;
  bool saw_a = false, saw_z = false;
  for (const auto& s : snap) {
    EXPECT_LE(prev, s.name);
    prev = s.name;
    if (s.name == "test.a_counter") {
      saw_a = true;
      EXPECT_DOUBLE_EQ(s.value, 3.0);
    }
    if (s.name == "test.z_counter") {
      saw_z = true;
      EXPECT_DOUBLE_EQ(s.value, 7.0);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_z);
}

TEST_F(MetricsTest, SnapshotHistogramsSummarizesEachHistogram) {
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.snap_hist");
  for (int i = 0; i < 99; ++i) h->Record(1e-3);
  h->Record(1.0);
  auto snap = MetricsRegistry::Global().SnapshotHistograms();
  bool found = false;
  std::string prev;
  for (const auto& s : snap) {
    EXPECT_LE(prev, s.name);  // sorted by name
    prev = s.name;
    if (s.name == "test.snap_hist") {
      found = true;
      EXPECT_EQ(s.count, 100);
      EXPECT_NEAR(s.sum, 99 * 1e-3 + 1.0, 1e-9);
      EXPECT_LE(s.p50, s.p99);
      EXPECT_LE(s.p99, 1.0);  // clamps to observed max
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, TimeScopeMacroRecordsIntoHistogram) {
  { MG_METRIC_TIME_SCOPE("test.timed_scope"); }
  { MG_METRIC_TIME_SCOPE("test.timed_scope"); }
  Histogram* h = MetricsRegistry::Global().GetHistogram("test.timed_scope");
  EXPECT_EQ(h->count(), 2);
  EXPECT_GE(h->min(), 0.0);
}

TEST_F(MetricsTest, DisabledTimeScopeSkipsRecording) {
  SetMetricsEnabled(false);
  { MG_METRIC_TIME_SCOPE("test.timed_gated"); }
  SetMetricsEnabled(true);
  EXPECT_EQ(MetricsRegistry::Global().GetHistogram("test.timed_gated")->count(),
            0);
}

TEST_F(MetricsTest, StepSinkWritesParseableJsonlWithCounterDeltas) {
  const std::string path =
      std::string(::testing::TempDir()) + "/metrics_sink_test.jsonl";
  std::remove(path.c_str());
  {
    StepMetricsSink sink(path);
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    MG_METRIC_COUNT("test.sink_counter", 3);
    sink.WriteStep(0, {{"loss_0", 1.5}});
    MG_METRIC_COUNT("test.sink_counter", 4);
    sink.WriteStep(1, {{"loss_0", 1.25}});
  }

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_TRUE(ValidateJson(l).ok()) << l;
  }
  // Deltas, not totals: step 0 saw +3, step 1 saw +4.
  EXPECT_NE(lines[0].find("\"test.sink_counter\":3"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("\"test.sink_counter\":4"), std::string::npos)
      << lines[1];
  EXPECT_NE(lines[0].find("\"loss_0\":1.5"), std::string::npos);
  EXPECT_NE(lines[1].find("\"step\":1"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(MetricsTest, StepSinkReportsKernelHistogramsWhenPopulated) {
  const std::string path =
      std::string(::testing::TempDir()) + "/metrics_sink_kernels.jsonl";
  std::remove(path.c_str());
  {
    StepMetricsSink sink(path);
    ASSERT_TRUE(sink.ok()) << sink.status().ToString();
    // No histogram samples yet: no "kernels" key on this line.
    sink.WriteStep(0, {});
    MetricsRegistry::Global()
        .GetHistogram("test.kernel.seconds")
        ->Record(2e-3);
    sink.WriteStep(1, {});
  }

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_TRUE(ValidateJson(l).ok()) << l;
  }
  EXPECT_EQ(lines[0].find("\"kernels\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"kernels\""), std::string::npos) << lines[1];
  EXPECT_NE(lines[1].find("\"test.kernel.seconds\""), std::string::npos)
      << lines[1];
  EXPECT_NE(lines[1].find("\"count\":1"), std::string::npos) << lines[1];
  EXPECT_NE(lines[1].find("\"p50\":"), std::string::npos) << lines[1];
  EXPECT_NE(lines[1].find("\"p99\":"), std::string::npos) << lines[1];
  std::remove(path.c_str());
}

TEST_F(MetricsTest, StepSinkAppendsAcrossReopens) {
  const std::string path =
      std::string(::testing::TempDir()) + "/metrics_sink_append.jsonl";
  std::remove(path.c_str());
  {
    StepMetricsSink sink(path);
    sink.WriteStep(0, {});
  }
  {
    StepMetricsSink sink(path);
    sink.WriteStep(0, {});
  }
  std::ifstream in(path);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) ++n;
  EXPECT_EQ(n, 2);
  std::remove(path.c_str());
}

TEST_F(MetricsTest, SinkOnBadPathReportsError) {
  StepMetricsSink sink("/nonexistent_dir_xyz/metrics.jsonl");
  EXPECT_FALSE(sink.ok());
  sink.WriteStep(0, {});  // must not crash
}

}  // namespace
}  // namespace obs
}  // namespace mocograd
