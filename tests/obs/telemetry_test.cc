#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.h"

namespace mocograd {
namespace obs {
namespace {

TEST(AggregatorTraceTest, BeginResetsEverything) {
  AggregatorTrace trace;
  trace.Begin("mocograd", 3);
  trace.RecordPair(0, 1, -0.5, 0.2, true);
  trace.SetCosine(0, 1, -0.5);
  trace.set_solver_iterations(7);
  trace.set_solver_weights({1.0, 2.0, 3.0});
  trace.AddStat("x", 1.0);

  trace.Begin("pcgrad", 2);
  EXPECT_EQ(trace.method(), "pcgrad");
  EXPECT_EQ(trace.num_tasks(), 2);
  EXPECT_TRUE(trace.pairs().empty());
  EXPECT_EQ(trace.solver_iterations(), 0);
  EXPECT_TRUE(trace.solver_weights().empty());
  EXPECT_TRUE(trace.stats().empty());
  EXPECT_FALSE(trace.cosines_complete());
  EXPECT_TRUE(std::isnan(trace.cosine(0, 1)));
  EXPECT_EQ(trace.cosine(1, 1), 1.0);
}

TEST(AggregatorTraceTest, CosineCompletenessCounting) {
  AggregatorTrace trace;
  trace.Begin("m", 3);
  EXPECT_FALSE(trace.cosines_complete());
  trace.SetCosine(0, 1, 0.5);
  trace.SetCosine(0, 1, 0.4);  // re-publishing the same cell counts once
  trace.SetCosine(0, 2, -0.1);
  EXPECT_FALSE(trace.cosines_complete());
  trace.SetCosine(1, 2, 0.9);
  EXPECT_TRUE(trace.cosines_complete());
  EXPECT_EQ(trace.cosine(0, 1), 0.4);
  EXPECT_EQ(trace.cosine(1, 0), 0.4);  // symmetric

  // K < 2 is trivially complete.
  trace.Begin("m", 1);
  EXPECT_TRUE(trace.cosines_complete());
}

TEST(AggregatorTraceTest, SetCosinesFromGramMatchesDefinition) {
  AggregatorTrace trace;
  trace.Begin("cagrad", 2);
  // g0·g0 = 4, g1·g1 = 9, g0·g1 = -3 → cos = -0.5.
  trace.SetCosinesFromGram({{4.0, -3.0}, {-3.0, 9.0}});
  EXPECT_TRUE(trace.cosines_complete());
  EXPECT_DOUBLE_EQ(trace.cosine(0, 1), -0.5);

  // Zero-norm rows get cosine 0 (the CosineSimilarity convention).
  trace.Begin("cagrad", 2);
  trace.SetCosinesFromGram({{0.0, 0.0}, {0.0, 9.0}});
  EXPECT_EQ(trace.cosine(0, 1), 0.0);
}

TEST(AggregatorTraceTest, MarkActedUpgradesRecordedPair) {
  AggregatorTrace trace;
  trace.Begin("mocograd", 3);
  trace.RecordPair(0, 2, -0.3, 0.0, false);
  trace.RecordPair(0, 1, -0.6, 0.0, false);
  trace.MarkActed(0, 1, 0.25);
  ASSERT_EQ(trace.pairs().size(), 2u);
  EXPECT_FALSE(trace.pairs()[0].acted);
  EXPECT_TRUE(trace.pairs()[1].acted);
  EXPECT_EQ(trace.pairs()[1].magnitude, 0.25);

  // MarkActed on an unrecorded pair appends a new decision.
  trace.MarkActed(1, 2, 0.5);
  ASSERT_EQ(trace.pairs().size(), 3u);
  EXPECT_TRUE(trace.pairs()[2].acted);
  EXPECT_TRUE(std::isnan(trace.pairs()[2].cosine));
}

class TelemetrySinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/telemetry_test.jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<std::string> ReadLines() {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) nl = text.size();
      if (nl > pos) lines.push_back(text.substr(pos, nl - pos));
      pos = nl + 1;
    }
    return lines;
  }

  std::string path_;
};

TEST_F(TelemetrySinkTest, WritesParsableStepRecords) {
  TelemetrySink sink(path_, /*every=*/2);
  ASSERT_TRUE(sink.ok());
  EXPECT_TRUE(sink.ShouldSample(0));
  EXPECT_FALSE(sink.ShouldSample(1));
  EXPECT_TRUE(sink.ShouldSample(2));

  AggregatorTrace trace;
  trace.Begin("mocograd", 2);
  trace.SetCosine(0, 1, -0.25);
  trace.RecordPair(0, 1, -0.25, 0.5, true);
  trace.set_solver_weights({0.5, 0.5});
  trace.AddStat("extra", 3.0);

  TelemetryRecord rec;
  rec.step = 4;
  rec.method = "mocograd";
  rec.num_tasks = 2;
  rec.losses = {1.5f, 2.5f};
  rec.task_weights = {1.0f, 1.0f};
  rec.grad_norms = {3.0, 4.0};
  rec.cosines = {1.0, -0.25, -0.25, 1.0};
  rec.mean_gcd = 1.25;
  rec.max_gcd = 1.25;
  rec.num_conflicting_pairs = 1;
  rec.num_pairs = 1;
  rec.trace = &trace;
  rec.phase_seconds = {{"forward", 0.25}};
  sink.WriteRecord(rec);
  sink.WriteWatchdogEvent("mocograd",
                          {4, "grad_explosion", -1, 100.0, 10.0});

  const auto lines = ReadLines();
  ASSERT_EQ(lines.size(), 2u);

  Result<JsonValue> step = ParseJson(lines[0]);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  const JsonValue& s = step.value();
  EXPECT_EQ(s.StringOr("type", ""), "step");
  EXPECT_EQ(s.NumberOr("step", -1), 4.0);
  EXPECT_EQ(s.StringOr("method", ""), "mocograd");
  ASSERT_NE(s.Find("losses"), nullptr);
  EXPECT_EQ(s.Find("losses")->items.size(), 2u);
  EXPECT_EQ(s.Find("losses")->items[0].number_value, 1.5);
  const JsonValue* gcd = s.Find("gcd");
  ASSERT_NE(gcd, nullptr);
  EXPECT_EQ(gcd->NumberOr("conflicting_pairs", -1), 1.0);
  const JsonValue* cosines = s.Find("cosines");
  ASSERT_NE(cosines, nullptr);
  ASSERT_EQ(cosines->items.size(), 1u);  // only i<j triples
  EXPECT_EQ(cosines->items[0].items[2].number_value, -0.25);
  const JsonValue* decisions = s.Find("decisions");
  ASSERT_NE(decisions, nullptr);
  ASSERT_EQ(decisions->items.size(), 1u);
  EXPECT_TRUE(decisions->items[0].Find("acted")->bool_value);
  EXPECT_EQ(decisions->items[0].NumberOr("mag", 0), 0.5);
  const JsonValue* solver = s.Find("solver");
  ASSERT_NE(solver, nullptr);
  EXPECT_EQ(solver->Find("weights")->items.size(), 2u);
  ASSERT_NE(s.Find("stats"), nullptr);
  EXPECT_EQ(s.Find("stats")->NumberOr("extra", 0), 3.0);
  ASSERT_NE(s.Find("phase"), nullptr);
  EXPECT_EQ(s.Find("phase")->NumberOr("forward", 0), 0.25);

  Result<JsonValue> wd = ParseJson(lines[1]);
  ASSERT_TRUE(wd.ok()) << wd.status().ToString();
  EXPECT_EQ(wd.value().StringOr("type", ""), "watchdog");
  EXPECT_EQ(wd.value().StringOr("kind", ""), "grad_explosion");
  EXPECT_EQ(wd.value().NumberOr("task", 0), -1.0);
  EXPECT_EQ(wd.value().NumberOr("value", 0), 100.0);
}

TEST_F(TelemetrySinkTest, NonFiniteValuesSerializeAsNull) {
  {
    TelemetrySink sink(path_, 1);
    ASSERT_TRUE(sink.ok());
    AggregatorTrace trace;
    trace.Begin("pcgrad", 2);
    trace.RecordPair(0, 1, std::nan(""), 0.1, true);
    TelemetryRecord rec;
    rec.step = 0;
    rec.method = "pcgrad";
    rec.num_tasks = 2;
    rec.losses = {1.0f, 2.0f};
    rec.trace = &trace;
    sink.WriteRecord(rec);
  }  // destructor flushes buffered step records

  const auto lines = ReadLines();
  ASSERT_EQ(lines.size(), 1u);
  Result<JsonValue> parsed = ParseJson(lines[0]);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* decisions = parsed.value().Find("decisions");
  ASSERT_NE(decisions, nullptr);
  ASSERT_EQ(decisions->items.size(), 1u);
  const JsonValue* cos = decisions->items[0].Find("cos");
  ASSERT_NE(cos, nullptr);
  EXPECT_TRUE(cos->is_null());
}

TEST_F(TelemetrySinkTest, AppendsAcrossSinkInstances) {
  {
    TelemetrySink sink(path_, 1);
    TelemetryRecord rec;
    rec.step = 0;
    rec.method = "a";
    rec.losses = {1.0f};
    rec.num_tasks = 1;
    sink.WriteRecord(rec);
  }
  {
    TelemetrySink sink(path_, 1);
    TelemetryRecord rec;
    rec.step = 0;
    rec.method = "b";
    rec.losses = {2.0f};
    rec.num_tasks = 1;
    sink.WriteRecord(rec);
  }
  EXPECT_EQ(ReadLines().size(), 2u);
}

TEST(TelemetrySinkStatusTest, BadPathReportsError) {
  TelemetrySink sink("/nonexistent-dir/x/y.jsonl", 1);
  EXPECT_FALSE(sink.ok());
}

}  // namespace
}  // namespace obs
}  // namespace mocograd
