#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "base/thread_pool.h"
#include "obs/json.h"

namespace mocograd {
namespace obs {
namespace {

// Every test owns the global session: start fresh, stop + clear on exit so
// tests compose in one process.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSession::Global().Stop();
    TraceSession::Global().Clear();
  }
  void TearDown() override {
    TraceSession::Global().Stop();
    TraceSession::Global().Clear();
  }
};

int CountSpans(const std::vector<TraceSpan>& spans, const std::string& name) {
  return static_cast<int>(
      std::count_if(spans.begin(), spans.end(), [&](const TraceSpan& s) {
        return name == s.label();
      }));
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(TracingEnabled());
  {
    MG_TRACE_SCOPE("should_not_appear");
    MG_TRACE_SCOPE("nor_this");
  }
  EXPECT_EQ(TraceSession::Global().span_count(), 0u);
}

TEST_F(TraceTest, RecordsNestedSpans) {
  TraceSession::Global().Start();
  {
    MG_TRACE_SCOPE("outer");
    MG_TRACE_SCOPE("inner");
  }
  TraceSession::Global().Stop();

  auto spans = TraceSession::Global().CollectSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(CountSpans(spans, "outer"), 1);
  EXPECT_EQ(CountSpans(spans, "inner"), 1);
  // Inner closes first but must nest inside outer's interval.
  const TraceSpan* outer = nullptr;
  const TraceSpan* inner = nullptr;
  for (const TraceSpan& s : spans) {
    if (std::string(s.label()) == "outer") outer = &s;
    if (std::string(s.label()) == "inner") inner = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns,
            outer->start_ns + outer->dur_ns);
  EXPECT_EQ(inner->tid, outer->tid);
}

TEST_F(TraceTest, DynamicNamesAreCopied) {
  TraceSession::Global().Start();
  {
    std::string name = "method_";
    name += "mocograd";
    TraceScope scope(std::move(name));
  }
  TraceSession::Global().Stop();
  auto spans = TraceSession::Global().CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].label(), "method_mocograd");
}

TEST_F(TraceTest, SpansAcrossPoolWorkers) {
  ThreadPool::SetGlobalNumThreads(4);
  TraceSession::Global().Start();
  ParallelFor(0, 64, 1, [](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      MG_TRACE_SCOPE("worker_span");
    }
  });
  TraceSession::Global().Stop();
  ThreadPool::SetGlobalNumThreads(1);

  auto spans = TraceSession::Global().CollectSpans();
  // 64 explicit spans plus whatever the pool itself traced.
  EXPECT_EQ(CountSpans(spans, "worker_span"), 64);
  std::set<int> tids;
  for (const TraceSpan& s : spans) tids.insert(s.tid);
  // The pool's spans come from at least the caller's thread; with 4 workers
  // more than one tid is overwhelmingly likely but not guaranteed on a
  // single-core box, so only sanity-check ids are small and non-negative.
  for (int tid : tids) {
    EXPECT_GE(tid, 0);
    EXPECT_LT(tid, 64);
  }
}

TEST_F(TraceTest, StartClearsPreviousSpans) {
  TraceSession::Global().Start();
  { MG_TRACE_SCOPE("first_session"); }
  TraceSession::Global().Stop();
  EXPECT_EQ(TraceSession::Global().span_count(), 1u);

  TraceSession::Global().Start();
  { MG_TRACE_SCOPE("second_session"); }
  TraceSession::Global().Stop();
  auto spans = TraceSession::Global().CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].label(), "second_session");
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  TraceSession::Global().Start();
  {
    MG_TRACE_SCOPE("alpha");
    MG_TRACE_SCOPE("beta \"quoted\"\\backslash");
  }
  TraceSession::Global().Stop();

  const std::string json = TraceSession::Global().ToChromeTraceJson();
  EXPECT_TRUE(ValidateJson(json).ok()) << ValidateJson(json).ToString();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TraceTest, ExportWritesValidFile) {
  TraceSession::Global().Start();
  { MG_TRACE_SCOPE("exported"); }
  TraceSession::Global().Stop();

  const std::string path =
      std::string(::testing::TempDir()) + "/trace_test_export.json";
  ASSERT_TRUE(TraceSession::Global().ExportChromeTrace(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(ValidateJson(buf.str()).ok());
  EXPECT_NE(buf.str().find("exported"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TraceTest, ExportToUnwritablePathFails) {
  TraceSession::Global().Start();
  TraceSession::Global().Stop();
  EXPECT_FALSE(TraceSession::Global()
                   .ExportChromeTrace("/nonexistent_dir_xyz/trace.json")
                   .ok());
}

}  // namespace
}  // namespace obs
}  // namespace mocograd
