#include "optim/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "autograd/ops.h"

namespace mocograd {
namespace {

using autograd::Variable;
namespace ag = autograd;

// Minimizes f(x) = ||x - c||^2 with the given optimizer; returns final x.
template <typename Opt, typename... Args>
float FinalDistance(float lr, int steps, Args... args) {
  Variable x(Tensor::FromVector({2}, {5.0f, -3.0f}), true);
  Tensor c = Tensor::FromVector({2}, {1.0f, 2.0f});
  Opt opt(std::vector<Variable*>{&x}, lr, args...);
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    Variable diff = ag::Sub(x, Variable(c, false));
    ag::SumAll(ag::Mul(diff, diff)).Backward();
    opt.Step();
  }
  const float dx = x.value()[0] - 1.0f;
  const float dy = x.value()[1] - 2.0f;
  return std::sqrt(dx * dx + dy * dy);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  EXPECT_LT(FinalDistance<optim::Sgd>(0.1f, 100), 1e-3f);
}

TEST(SgdTest, MomentumConverges) {
  EXPECT_LT(FinalDistance<optim::Sgd>(0.05f, 200, 0.9f), 1e-2f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  EXPECT_LT(FinalDistance<optim::Adam>(0.3f, 200), 1e-2f);
}

TEST(AdagradTest, ConvergesOnQuadratic) {
  EXPECT_LT(FinalDistance<optim::Adagrad>(1.0f, 300), 1e-2f);
}

TEST(SgdTest, SingleStepMatchesHandComputed) {
  Variable x(Tensor::FromVector({1}, {2.0f}), true);
  optim::Sgd opt({&x}, /*lr=*/0.5f);
  // f = x^2, grad = 4 at x=2.
  ag::SumAll(ag::Mul(x, x)).Backward();
  opt.Step();
  EXPECT_FLOAT_EQ(x.value()[0], 0.0f);  // 2 - 0.5*4
}

TEST(SgdTest, WeightDecayShrinksParams) {
  Variable x(Tensor::FromVector({1}, {1.0f}), true);
  optim::Sgd opt({&x}, /*lr=*/0.1f, /*momentum=*/0.0f, /*weight_decay=*/1.0f);
  x.mutable_grad();  // zero gradient: only decay acts
  opt.Step();
  EXPECT_FLOAT_EQ(x.value()[0], 0.9f);
}

TEST(OptimizerTest, SkipsParamsWithoutGrad) {
  Variable x(Tensor::FromVector({1}, {3.0f}), true);
  optim::Adam opt({&x}, 0.1f);
  opt.Step();  // no grad buffer: must not touch x
  EXPECT_FLOAT_EQ(x.value()[0], 3.0f);
}

TEST(OptimizerTest, ZeroGradClears) {
  Variable x(Tensor::FromVector({1}, {1.0f}), true);
  optim::Sgd opt({&x}, 0.1f);
  ag::SumAll(ag::Mul(x, x)).Backward();
  EXPECT_NE(x.grad()[0], 0.0f);
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(OptimizerTest, LearningRateIsMutable) {
  Variable x(Tensor::FromVector({1}, {1.0f}), true);
  optim::Sgd opt({&x}, 0.1f);
  opt.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.01f);
}

TEST(AdamTest, BiasCorrectionFirstStep) {
  // With grad g on step 1, Adam moves by ~lr * sign(g) regardless of |g|.
  Variable x(Tensor::FromVector({1}, {0.0f}), true);
  optim::Adam opt({&x}, 0.1f);
  x.mutable_grad()[0] = 1e-3f;
  opt.Step();
  EXPECT_NEAR(x.value()[0], -0.1f, 1e-3f);
}

}  // namespace
}  // namespace mocograd
