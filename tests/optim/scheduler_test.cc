#include "optim/scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mocograd {
namespace {

using autograd::Variable;

struct SchedFixture {
  Variable x{Tensor::Zeros({1}), true};
  optim::Sgd opt{{&x}, 1.0f};
};

TEST(ConstantLrTest, HoldsRate) {
  SchedFixture f;
  optim::ConstantLr sched(&f.opt);
  for (int i = 0; i < 5; ++i) sched.Step();
  EXPECT_FLOAT_EQ(f.opt.learning_rate(), 1.0f);
}

TEST(StepDecayLrTest, DecaysEveryPeriod) {
  SchedFixture f;
  optim::StepDecayLr sched(&f.opt, /*period=*/3, /*gamma=*/0.5f);
  for (int i = 0; i < 2; ++i) sched.Step();
  EXPECT_FLOAT_EQ(f.opt.learning_rate(), 1.0f);  // steps 1,2 < period
  sched.Step();                                  // step 3
  EXPECT_FLOAT_EQ(f.opt.learning_rate(), 0.5f);
  for (int i = 0; i < 3; ++i) sched.Step();      // step 6
  EXPECT_FLOAT_EQ(f.opt.learning_rate(), 0.25f);
}

TEST(InverseSqrtLrTest, MatchesCorollary1Schedule) {
  SchedFixture f;
  optim::InverseSqrtLr sched(&f.opt);
  sched.Step();  // t = 1
  EXPECT_NEAR(f.opt.learning_rate(), 1.0f / std::sqrt(2.0f), 1e-6);
  for (int i = 0; i < 7; ++i) sched.Step();  // t = 8
  EXPECT_NEAR(f.opt.learning_rate(), 1.0f / 3.0f, 1e-6);
}

TEST(CosineLrTest, EndsAtMinLr) {
  SchedFixture f;
  optim::CosineLr sched(&f.opt, /*total_steps=*/10, /*min_lr=*/0.1f);
  for (int i = 0; i < 10; ++i) sched.Step();
  EXPECT_NEAR(f.opt.learning_rate(), 0.1f, 1e-5);
  // Past the horizon the rate stays clamped at min.
  for (int i = 0; i < 5; ++i) sched.Step();
  EXPECT_NEAR(f.opt.learning_rate(), 0.1f, 1e-5);
}

TEST(CosineLrTest, MonotoneNonIncreasing) {
  SchedFixture f;
  optim::CosineLr sched(&f.opt, 20);
  float prev = f.opt.learning_rate();
  for (int i = 0; i < 20; ++i) {
    sched.Step();
    EXPECT_LE(f.opt.learning_rate(), prev + 1e-7);
    prev = f.opt.learning_rate();
  }
}

}  // namespace
}  // namespace mocograd
