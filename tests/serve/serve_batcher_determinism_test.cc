// The micro-batcher's bit-exactness contract: any interleaving of
// concurrent single-row Infer() calls — size-triggered flushes, deadline
// flushes, partial batches — produces for each request exactly the bits a
// lone session.Forward() of that row would. CI reruns this suite (the name
// contains "determinism") at thread-pool sizes 2 and 8 and with SIMD
// disabled; the TSan leg exercises the same paths for data races.

#include "serve/batcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "base/check.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "mtl/mmoe.h"
#include "serve/plan.h"

namespace mocograd {
namespace {

mtl::MmoeConfig MmoeShape() {
  mtl::MmoeConfig cfg;
  cfg.input_dim = 10;
  cfg.num_experts = 6;
  cfg.expert_dims = {64, 32};
  cfg.task_output_dims = {1, 1};
  return cfg;
}

struct Fixture {
  Fixture() : rng(21), model(MmoeShape(), rng) {
    auto sm = serve::ServeModel::FromModule(serve::BuildMmoePlan(MmoeShape()),
                                            model);
    MG_CHECK(sm.ok(), sm.status().ToString());
    serve_model = std::make_unique<serve::ServeModel>(std::move(sm).value());
  }

  Rng rng;
  mtl::MmoeModel model;
  std::unique_ptr<serve::ServeModel> serve_model;
};

// Runs `num_requests` rows through the batcher from `num_threads` requester
// threads and checks every output bitwise against a lone single-row forward.
void CheckBatchedMatchesSingleRow(const serve::ServeModel& sm,
                                  serve::BatcherOptions options,
                                  int num_threads, int num_requests) {
  const int64_t in = sm.input_dim();
  const int tasks = sm.num_tasks();

  std::vector<float> rows(static_cast<size_t>(num_requests) * in);
  Rng xrng(22);
  for (float& v : rows) v = xrng.Uniform(-1.0f, 1.0f);

  // Reference: each row alone through a plain session.
  serve::InferenceSession session(sm);
  std::vector<std::vector<float>> want(tasks), got(tasks);
  for (int k = 0; k < tasks; ++k) {
    want[k].resize(static_cast<size_t>(num_requests) * sm.task_output_dim(k));
    got[k].resize(want[k].size());
  }
  for (int r = 0; r < num_requests; ++r) {
    std::vector<float*> outs(tasks);
    for (int k = 0; k < tasks; ++k) {
      outs[k] = want[k].data() + static_cast<int64_t>(r) * sm.task_output_dim(k);
    }
    session.Forward(rows.data() + r * in, 1, outs.data());
  }

  serve::MicroBatcher batcher(sm, options);
  std::vector<std::thread> workers;
  std::atomic<int> next{0};
  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&] {
      std::vector<float*> outs(tasks);
      for (int r = next.fetch_add(1); r < num_requests;
           r = next.fetch_add(1)) {
        for (int k = 0; k < tasks; ++k) {
          outs[k] =
              got[k].data() + static_cast<int64_t>(r) * sm.task_output_dim(k);
        }
        batcher.Infer(rows.data() + r * in, outs.data());
      }
    });
  }
  for (auto& w : workers) w.join();

  for (int k = 0; k < tasks; ++k) {
    for (size_t i = 0; i < want[k].size(); ++i) {
      ASSERT_EQ(want[k][i], got[k][i]) << "task " << k << " element " << i;
    }
  }
  EXPECT_EQ(batcher.rows_executed(), num_requests);
  EXPECT_GE(batcher.batches_executed(), 1);
}

TEST(ServeBatcherDeterminismTest, SizeTriggeredFlushesMatchSingleRow) {
  Fixture f;
  serve::BatcherOptions opts;
  opts.max_batch = 8;
  opts.deadline_us = 1000000;  // deadline effectively off: size triggers
  CheckBatchedMatchesSingleRow(*f.serve_model, opts, /*num_threads=*/8,
                               /*num_requests=*/64);
}

TEST(ServeBatcherDeterminismTest, DeadlineFlushesPartialBatches) {
  Fixture f;
  serve::BatcherOptions opts;
  opts.max_batch = 64;  // never fills: every flush is deadline-triggered
  opts.deadline_us = 100;
  CheckBatchedMatchesSingleRow(*f.serve_model, opts, /*num_threads=*/4,
                               /*num_requests=*/24);
}

TEST(ServeBatcherDeterminismTest, MixedTriggerHighContention) {
  Fixture f;
  serve::BatcherOptions opts;
  opts.max_batch = 5;  // does not divide request count: last batch partial
  opts.deadline_us = 50;
  CheckBatchedMatchesSingleRow(*f.serve_model, opts, /*num_threads=*/8,
                               /*num_requests=*/97);
}

TEST(ServeBatcherDeterminismTest, SingleRequesterDeadlineFlush) {
  Fixture f;
  serve::BatcherOptions opts;
  opts.max_batch = 32;
  opts.deadline_us = 100;
  // One thread can never fill the batch; progress relies entirely on the
  // deadline path (a regression here deadlocks, caught by the test timeout).
  CheckBatchedMatchesSingleRow(*f.serve_model, opts, /*num_threads=*/1,
                               /*num_requests=*/6);
}

TEST(ServeBatcherDeterminismTest, ImmediateFlushWithZeroDeadline) {
  Fixture f;
  serve::BatcherOptions opts;
  opts.max_batch = 16;
  opts.deadline_us = 0;  // degenerates to (nearly) unbatched serving
  CheckBatchedMatchesSingleRow(*f.serve_model, opts, /*num_threads=*/4,
                               /*num_requests=*/32);
}

}  // namespace
}  // namespace mocograd
