// Reduced-precision (bf16) serving (docs/SERVING.md "Reduced precision"):
// a kBf16 ServeModel stores weights as bf16 and widens on load. Contracts
// under test: (1) accuracy — outputs stay within a small relative bound of
// the fp32 serve outputs on every plan family (the only loss is each
// weight's one-time storage rounding); (2) batch invariance — a bf16
// batched forward reproduces independent single-row forwards bitwise,
// exactly like fp32 serving; (3) precision selection — the
// MOCOGRAD_SERVE_PRECISION knob and the explicit argument agree, and
// checkpoint loading honors the precision.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mtl/cgc.h"
#include "mtl/hps.h"
#include "mtl/mmoe.h"
#include "nn/serialize.h"
#include "serve/engine.h"
#include "serve/plan.h"

namespace mocograd {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Serving shapes with a deliberately ragged task head (17 = one full
// 16-column panel plus an edge) so the bf16 GEMM exercises both the
// in-place widening panels and the pre-widened edge panel.
mtl::HpsConfig HpsShape() {
  mtl::HpsConfig cfg;
  cfg.input_dim = 10;
  cfg.shared_dims = {64, 32};
  cfg.task_output_dims = {1, 17};
  return cfg;
}

mtl::MmoeConfig MmoeShape() {
  mtl::MmoeConfig cfg;
  cfg.input_dim = 10;
  cfg.num_experts = 6;
  cfg.expert_dims = {64, 32};
  cfg.task_output_dims = {1, 17};
  return cfg;
}

mtl::CgcConfig CgcShape() {
  mtl::CgcConfig cfg;
  cfg.input_dim = 10;
  cfg.num_shared_experts = 3;
  cfg.num_task_experts = 1;
  cfg.expert_dims = {64, 32};
  cfg.task_output_dims = {1, 17};
  return cfg;
}

void RunForward(const serve::ServeModel& sm, const std::vector<float>& x,
                int64_t rows, std::vector<std::vector<float>>* out) {
  serve::InferenceSession session(sm);
  out->resize(sm.num_tasks());
  std::vector<float*> out_ptrs;
  for (int k = 0; k < sm.num_tasks(); ++k) {
    (*out)[k].assign(static_cast<size_t>(rows * sm.task_output_dim(k)),
                     0.0f);
    out_ptrs.push_back((*out)[k].data());
  }
  session.Forward(x.data(), rows, out_ptrs.data());
}

// bf16 outputs within a small relative envelope of fp32 outputs. Weight
// storage rounding is <= 2^-8 relative per weight; through two hidden
// layers the compounded deviation stays well under 5% for these shapes.
void ExpectBf16CloseToFp32(const serve::ServePlan& plan, nn::Module& model) {
  auto fp32 = serve::ServeModel::FromModule(plan, model,
                                            serve::ServePrecision::kFp32);
  auto bf16 = serve::ServeModel::FromModule(plan, model,
                                            serve::ServePrecision::kBf16);
  ASSERT_TRUE(fp32.ok()) << fp32.status().ToString();
  ASSERT_TRUE(bf16.ok()) << bf16.status().ToString();
  EXPECT_EQ(fp32.value().precision(), serve::ServePrecision::kFp32);
  EXPECT_EQ(bf16.value().precision(), serve::ServePrecision::kBf16);

  constexpr int64_t kRows = 8;
  Rng rng(0xb5e77);
  std::vector<float> x(kRows * fp32.value().input_dim());
  for (float& v : x) v = rng.Uniform(-2.0f, 2.0f);

  std::vector<std::vector<float>> want, got;
  RunForward(fp32.value(), x, kRows, &want);
  RunForward(bf16.value(), x, kRows, &got);

  double max_abs_err = 0.0;
  for (int k = 0; k < fp32.value().num_tasks(); ++k) {
    ASSERT_EQ(want[k].size(), got[k].size());
    for (size_t i = 0; i < want[k].size(); ++i) {
      ASSERT_TRUE(std::isfinite(got[k][i]))
          << "task " << k << " element " << i;
      const double bound =
          0.05 * std::max(1.0, std::fabs(static_cast<double>(want[k][i])));
      EXPECT_NEAR(want[k][i], got[k][i], bound)
          << "task " << k << " element " << i;
      max_abs_err = std::max(
          max_abs_err, std::fabs(static_cast<double>(want[k][i]) - got[k][i]));
    }
  }
  // The rounding must actually be exercised: identical outputs would mean
  // the bf16 path silently served fp32 weights.
  EXPECT_GT(max_abs_err, 0.0);
}

// bf16 batched forward == independent bf16 single-row forwards, bitwise.
void ExpectBf16RowInvariant(const serve::ServeModel& sm, int64_t rows) {
  serve::InferenceSession session(sm);
  Rng rng(0x5eed + rows);
  std::vector<float> x(rows * sm.input_dim());
  for (float& v : x) v = rng.Uniform(-2.0f, 2.0f);

  std::vector<std::vector<float>> batched(sm.num_tasks()),
      single(sm.num_tasks());
  std::vector<float*> out_ptrs(sm.num_tasks());
  for (int k = 0; k < sm.num_tasks(); ++k) {
    batched[k].resize(rows * sm.task_output_dim(k));
    single[k].resize(batched[k].size());
    out_ptrs[k] = batched[k].data();
  }
  session.Forward(x.data(), rows, out_ptrs.data());

  for (int64_t r = 0; r < rows; ++r) {
    for (int k = 0; k < sm.num_tasks(); ++k) {
      out_ptrs[k] = single[k].data() + r * sm.task_output_dim(k);
    }
    session.Forward(x.data() + r * sm.input_dim(), 1, out_ptrs.data());
  }
  for (int k = 0; k < sm.num_tasks(); ++k) {
    for (size_t i = 0; i < batched[k].size(); ++i) {
      EXPECT_EQ(batched[k][i], single[k][i])
          << "rows=" << rows << " task " << k << " element " << i;
    }
  }
}

TEST(ServeBf16Test, HpsWithinAccuracyBound) {
  Rng rng(21);
  mtl::HpsModel model(HpsShape(), rng);
  ExpectBf16CloseToFp32(serve::BuildHpsPlan(HpsShape()), model);
}

TEST(ServeBf16Test, MmoeWithinAccuracyBound) {
  Rng rng(22);
  mtl::MmoeModel model(MmoeShape(), rng);
  ExpectBf16CloseToFp32(serve::BuildMmoePlan(MmoeShape()), model);
}

TEST(ServeBf16Test, CgcWithinAccuracyBound) {
  Rng rng(23);
  mtl::CgcModel model(CgcShape(), rng);
  ExpectBf16CloseToFp32(serve::BuildCgcPlan(CgcShape()), model);
}

TEST(ServeBf16Test, Bf16ServingIsRowInvariant) {
  Rng rng(24);
  mtl::MmoeModel model(MmoeShape(), rng);
  auto sm = serve::ServeModel::FromModule(serve::BuildMmoePlan(MmoeShape()),
                                          model,
                                          serve::ServePrecision::kBf16);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  for (int64_t rows : {2, 7, 32}) ExpectBf16RowInvariant(sm.value(), rows);
}

TEST(ServeBf16Test, CheckpointHonorsPrecision) {
  Rng rng(25);
  mtl::MmoeModel model(MmoeShape(), rng);
  const std::string path = TempPath("serve_bf16_mmoe.ckpt");
  ASSERT_TRUE(nn::SaveParameters(model, path).ok());
  const serve::ServePlan plan = serve::BuildMmoePlan(MmoeShape());

  auto from_module = serve::ServeModel::FromModule(
      plan, model, serve::ServePrecision::kBf16);
  auto from_ckpt = serve::ServeModel::FromCheckpoint(
      plan, path, serve::ServePrecision::kBf16);
  ASSERT_TRUE(from_module.ok()) << from_module.status().ToString();
  ASSERT_TRUE(from_ckpt.ok()) << from_ckpt.status().ToString();
  EXPECT_EQ(from_ckpt.value().precision(), serve::ServePrecision::kBf16);

  constexpr int64_t kRows = 4;
  Rng xrng(26);
  std::vector<float> x(kRows * plan.input_dim);
  for (float& v : x) v = xrng.Uniform(-2.0f, 2.0f);
  std::vector<std::vector<float>> a, b;
  RunForward(from_module.value(), x, kRows, &a);
  RunForward(from_ckpt.value(), x, kRows, &b);
  for (int k = 0; k < plan.num_tasks(); ++k) {
    for (size_t i = 0; i < a[k].size(); ++i) {
      EXPECT_EQ(a[k][i], b[k][i]) << "task " << k << " element " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(ServeBf16Test, DefaultPrecisionFollowsEnvKnob) {
  // DefaultServePrecision re-reads the knob on each call (no caching), so
  // the test can flip it in-process.
  ASSERT_EQ(::setenv("MOCOGRAD_SERVE_PRECISION", "bf16", 1), 0);
  EXPECT_EQ(serve::DefaultServePrecision(), serve::ServePrecision::kBf16);
  ASSERT_EQ(::setenv("MOCOGRAD_SERVE_PRECISION", "fp32", 1), 0);
  EXPECT_EQ(serve::DefaultServePrecision(), serve::ServePrecision::kFp32);
  // Unknown values fall back silently (base/env.h contract).
  ASSERT_EQ(::setenv("MOCOGRAD_SERVE_PRECISION", "int8", 1), 0);
  EXPECT_EQ(serve::DefaultServePrecision(), serve::ServePrecision::kFp32);
  ASSERT_EQ(::unsetenv("MOCOGRAD_SERVE_PRECISION"), 0);
  EXPECT_EQ(serve::DefaultServePrecision(), serve::ServePrecision::kFp32);
  EXPECT_STREQ(serve::ServePrecisionName(serve::ServePrecision::kBf16),
               "bf16");
  EXPECT_STREQ(serve::ServePrecisionName(serve::ServePrecision::kFp32),
               "fp32");
}

}  // namespace
}  // namespace mocograd
