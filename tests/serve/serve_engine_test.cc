// The serving engine's two contracts (docs/SERVING.md): (1) equivalence —
// a frozen ServeModel forward is bitwise identical to the training
// MtlModel::Forward it snapshots, whether the weights came from the live
// module or from a nn/serialize checkpoint; (2) zero steady-state heap
// allocations on the request path — after warm-up, Forward never touches
// the allocator (activations on the thread's ScratchArena) and never grows
// the arena's backing chunks.

#include "serve/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "autograd/variable.h"
#include "base/scratch.h"
#include "base/thread_pool.h"
#include "mtl/cgc.h"
#include "mtl/hps.h"
#include "mtl/mmoe.h"
#include "nn/serialize.h"
#include "serve/plan.h"

// Global operator new/delete instrumentation for the steady-state
// assertion. Counting is always on (plain relaxed atomics), asserted only
// inside the zero-alloc test.
static std::atomic<long long> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mocograd {
namespace {

using autograd::Variable;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// The harness's AliExpress-style shapes (harness::ArchitectureFactory).
mtl::HpsConfig HpsShape() {
  mtl::HpsConfig cfg;
  cfg.input_dim = 10;
  cfg.shared_dims = {64, 32};
  cfg.task_output_dims = {1, 1};
  return cfg;
}

mtl::MmoeConfig MmoeShape() {
  mtl::MmoeConfig cfg;
  cfg.input_dim = 10;
  cfg.num_experts = 6;
  cfg.expert_dims = {64, 32};
  cfg.task_output_dims = {1, 1};
  return cfg;
}

mtl::CgcConfig CgcShape() {
  mtl::CgcConfig cfg;
  cfg.input_dim = 10;
  cfg.num_shared_experts = 3;
  cfg.num_task_experts = 1;
  cfg.expert_dims = {64, 32};
  cfg.task_output_dims = {1, 1};
  return cfg;
}

// The serving contract has two bitwise halves (docs/SERVING.md):
//  1. a single-row serve forward reproduces the training model's
//     single-row forward exactly, and
//  2. a batched serve forward of N rows reproduces N single-row serve
//     forwards exactly (a row's bits never depend on its batch-mates).
// Together they pin every served row, at any batch size, to the training
// model's single-row arithmetic. (A *batched* training forward is NOT the
// reference: for width-1 task heads Gemm's m>=2 dispatch reduces in a
// different lane order than m==1, so training itself is not row-invariant
// there — the serve engine mirrors the m==1 path instead.)
void ExpectSingleRowMatchesTraining(mtl::MtlModel& model,
                                    const serve::ServeModel& sm) {
  serve::InferenceSession session(sm);
  Rng rng(0x0b5e77e);
  Tensor x = Tensor::Randn({1, sm.input_dim()}, rng);

  std::vector<Variable> inputs(model.num_tasks(), Variable(x, false));
  std::vector<Variable> want = model.Forward(inputs);

  std::vector<std::vector<float>> got(sm.num_tasks());
  std::vector<float*> out_ptrs;
  for (int k = 0; k < sm.num_tasks(); ++k) {
    got[k].resize(sm.task_output_dim(k));
    out_ptrs.push_back(got[k].data());
  }
  session.Forward(x.data(), 1, out_ptrs.data());

  for (int k = 0; k < sm.num_tasks(); ++k) {
    const Tensor& w = want[k].value();
    ASSERT_EQ(w.NumElements(), static_cast<int64_t>(got[k].size()));
    for (int64_t i = 0; i < w.NumElements(); ++i) {
      // Bitwise, not approximate: the serve kernels mirror the training
      // kernels' summation order and rounding exactly.
      EXPECT_EQ(w[i], got[k][i]) << "task " << k << " element " << i;
    }
  }
}

// Batched forward of `rows` == `rows` independent single-row forwards.
void ExpectRowInvariant(const serve::ServeModel& sm, int64_t rows) {
  serve::InferenceSession session(sm);
  Rng rng(0x5eed + rows);
  std::vector<float> x(rows * sm.input_dim());
  for (float& v : x) v = rng.Uniform(-2.0f, 2.0f);

  std::vector<std::vector<float>> batched(sm.num_tasks()), single(sm.num_tasks());
  std::vector<float*> out_ptrs(sm.num_tasks());
  for (int k = 0; k < sm.num_tasks(); ++k) {
    batched[k].resize(rows * sm.task_output_dim(k));
    single[k].resize(batched[k].size());
    out_ptrs[k] = batched[k].data();
  }
  session.Forward(x.data(), rows, out_ptrs.data());

  for (int64_t r = 0; r < rows; ++r) {
    for (int k = 0; k < sm.num_tasks(); ++k) {
      out_ptrs[k] = single[k].data() + r * sm.task_output_dim(k);
    }
    session.Forward(x.data() + r * sm.input_dim(), 1, out_ptrs.data());
  }
  for (int k = 0; k < sm.num_tasks(); ++k) {
    for (size_t i = 0; i < batched[k].size(); ++i) {
      EXPECT_EQ(batched[k][i], single[k][i])
          << "rows=" << rows << " task " << k << " element " << i;
    }
  }
}

TEST(ServeEngineTest, HpsMatchesTrainingModelBitwise) {
  Rng rng(11);
  mtl::HpsModel model(HpsShape(), rng);
  auto sm = serve::ServeModel::FromModule(serve::BuildHpsPlan(HpsShape()),
                                          model);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  ExpectSingleRowMatchesTraining(model, sm.value());
  for (int64_t rows : {2, 7, 32}) ExpectRowInvariant(sm.value(), rows);
}

TEST(ServeEngineTest, MmoeMatchesTrainingModelBitwise) {
  Rng rng(12);
  mtl::MmoeModel model(MmoeShape(), rng);
  auto sm = serve::ServeModel::FromModule(serve::BuildMmoePlan(MmoeShape()),
                                          model);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  ExpectSingleRowMatchesTraining(model, sm.value());
  for (int64_t rows : {2, 7, 32}) ExpectRowInvariant(sm.value(), rows);
}

TEST(ServeEngineTest, CgcMatchesTrainingModelBitwise) {
  Rng rng(13);
  mtl::CgcModel model(CgcShape(), rng);
  auto sm = serve::ServeModel::FromModule(serve::BuildCgcPlan(CgcShape()),
                                          model);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  ExpectSingleRowMatchesTraining(model, sm.value());
  for (int64_t rows : {2, 7, 32}) ExpectRowInvariant(sm.value(), rows);
}

TEST(ServeEngineTest, FromCheckpointMatchesFromModule) {
  Rng rng(14);
  mtl::MmoeModel model(MmoeShape(), rng);
  const std::string path = TempPath("serve_mmoe.ckpt");
  ASSERT_TRUE(nn::SaveParameters(model, path).ok());

  const serve::ServePlan plan = serve::BuildMmoePlan(MmoeShape());
  auto from_ckpt = serve::ServeModel::FromCheckpoint(plan, path);
  ASSERT_TRUE(from_ckpt.ok()) << from_ckpt.status().ToString();
  ExpectSingleRowMatchesTraining(model, from_ckpt.value());
  ExpectRowInvariant(from_ckpt.value(), 5);
  std::remove(path.c_str());
}

TEST(ServeEngineTest, FromCheckpointRejectsMissingAndMismatched) {
  const serve::ServePlan plan = serve::BuildMmoePlan(MmoeShape());
  auto missing = serve::ServeModel::FromCheckpoint(
      plan, TempPath("serve_does_not_exist.ckpt"));
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // A checkpoint of a different architecture must be rejected on shapes.
  Rng rng(15);
  mtl::HpsModel hps(HpsShape(), rng);
  const std::string path = TempPath("serve_wrong_arch.ckpt");
  ASSERT_TRUE(nn::SaveParameters(hps, path).ok());
  auto wrong = serve::ServeModel::FromCheckpoint(plan, path);
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ServeEngineTest, FromModuleRejectsWrongModule) {
  Rng rng(16);
  mtl::HpsModel hps(HpsShape(), rng);
  auto sm = serve::ServeModel::FromModule(serve::BuildMmoePlan(MmoeShape()),
                                          hps);
  EXPECT_EQ(sm.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeEngineTest, ServingShapesAreBatchInvariant) {
  EXPECT_TRUE(serve::PlanIsBatchInvariant(serve::BuildHpsPlan(HpsShape())));
  EXPECT_TRUE(serve::PlanIsBatchInvariant(serve::BuildMmoePlan(MmoeShape())));
  EXPECT_TRUE(serve::PlanIsBatchInvariant(serve::BuildCgcPlan(CgcShape())));
}

TEST(ServeEngineTest, ForwardIsHeapAllocationFreeInSteadyState) {
  // Pool of 1: ParallelFor with more participants allocates its fork-join
  // state, which is kernel plumbing, not request-path work.
  ThreadPool::SetGlobalNumThreads(1);
  Rng rng(17);
  mtl::MmoeModel model(MmoeShape(), rng);
  auto sm = serve::ServeModel::FromModule(serve::BuildMmoePlan(MmoeShape()),
                                          model);
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  serve::InferenceSession session(sm.value());

  constexpr int64_t kRows = 16;
  std::vector<float> input(kRows * sm.value().input_dim());
  Rng xrng(18);
  for (float& v : input) v = xrng.Uniform() - 0.5f;
  std::vector<std::vector<float>> out(sm.value().num_tasks());
  std::vector<float*> out_ptrs;
  for (int k = 0; k < sm.value().num_tasks(); ++k) {
    out[k].resize(kRows * sm.value().task_output_dim(k));
    out_ptrs.push_back(out[k].data());
  }

  // Warm up: grows the scratch arena to its high-water mark.
  for (int i = 0; i < 3; ++i) {
    session.Forward(input.data(), kRows, out_ptrs.data());
  }

  const long long heap_before = g_heap_allocs.load();
  const int64_t chunks_before = ScratchArena::TotalChunkAllocs();
  for (int i = 0; i < 50; ++i) {
    session.Forward(input.data(), kRows, out_ptrs.data());
    session.Forward(input.data(), 1, out_ptrs.data());
  }
  EXPECT_EQ(g_heap_allocs.load(), heap_before)
      << "request path touched the heap";
  EXPECT_EQ(ScratchArena::TotalChunkAllocs(), chunks_before)
      << "request path grew the scratch arena";
}

}  // namespace
}  // namespace mocograd
