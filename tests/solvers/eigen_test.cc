#include "solvers/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.h"

namespace mocograd {
namespace {

using solvers::JacobiEigenSymmetric;

TEST(JacobiEigenTest, DiagonalMatrixIsItsOwnDecomposition) {
  auto e = JacobiEigenSymmetric({{3.0, 0.0}, {0.0, 1.0}});
  EXPECT_NEAR(e.values[0], 3.0, 1e-12);
  EXPECT_NEAR(e.values[1], 1.0, 1e-12);
  EXPECT_NEAR(std::fabs(e.vectors[0][0]), 1.0, 1e-10);
  EXPECT_NEAR(std::fabs(e.vectors[1][1]), 1.0, 1e-10);
}

TEST(JacobiEigenTest, HandComputed2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
  auto e = JacobiEigenSymmetric({{2.0, 1.0}, {1.0, 2.0}});
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
  EXPECT_NEAR(std::fabs(e.vectors[0][0]), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(std::fabs(e.vectors[0][1]), 1.0 / std::sqrt(2.0), 1e-8);
}

class JacobiPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JacobiPropertyTest, ReconstructionAndOrthonormality) {
  Rng rng(100 + GetParam());
  const int n = 2 + GetParam() % 7;
  // Random symmetric PSD-ish matrix A = B Bᵀ + small diagonal.
  std::vector<std::vector<double>> b(n, std::vector<double>(n));
  for (auto& row : b) {
    for (double& v : row) v = rng.Normal();
  }
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < n; ++k) a[i][j] += b[i][k] * b[j][k];
    }
    a[i][i] += 0.1;
  }

  auto e = JacobiEigenSymmetric(a);
  // Sorted descending, all positive (PSD + 0.1 I).
  for (int i = 0; i + 1 < n; ++i) EXPECT_GE(e.values[i], e.values[i + 1]);
  for (int i = 0; i < n; ++i) EXPECT_GT(e.values[i], 0.0);

  // A v_i == λ_i v_i.
  for (int i = 0; i < n; ++i) {
    for (int r = 0; r < n; ++r) {
      double av = 0.0;
      for (int c = 0; c < n; ++c) av += a[r][c] * e.vectors[i][c];
      EXPECT_NEAR(av, e.values[i] * e.vectors[i][r],
                  1e-8 * (1.0 + std::fabs(e.values[i])))
          << "eigpair " << i << " row " << r;
    }
  }
  // Orthonormality.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double dot = 0.0;
      for (int c = 0; c < n; ++c) dot += e.vectors[i][c] * e.vectors[j][c];
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
  // Trace preserved.
  double trace = 0.0, sum = 0.0;
  for (int i = 0; i < n; ++i) {
    trace += a[i][i];
    sum += e.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-8 * std::fabs(trace));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JacobiPropertyTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace mocograd
