#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.h"
#include "solvers/linear_solve.h"
#include "solvers/min_norm.h"
#include "solvers/simplex.h"

namespace mocograd {
namespace {

using solvers::MinNormWeights;
using solvers::ProjectToSimplex;
using solvers::SolveLinear;

TEST(SimplexTest, AlreadyOnSimplexIsFixed) {
  auto w = ProjectToSimplex({0.2, 0.3, 0.5});
  EXPECT_NEAR(w[0], 0.2, 1e-9);
  EXPECT_NEAR(w[1], 0.3, 1e-9);
  EXPECT_NEAR(w[2], 0.5, 1e-9);
}

TEST(SimplexTest, NegativeEntriesClippedToZero) {
  auto w = ProjectToSimplex({1.0, -5.0});
  EXPECT_NEAR(w[0], 1.0, 1e-9);
  EXPECT_NEAR(w[1], 0.0, 1e-9);
}

TEST(SimplexTest, UniformFromEqualInput) {
  auto w = ProjectToSimplex({7.0, 7.0, 7.0, 7.0});
  for (double x : w) EXPECT_NEAR(x, 0.25, 1e-9);
}

// Property sweep: output is on the simplex and is the closest point.
class SimplexPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexPropertyTest, KktConditionsHold) {
  Rng rng(GetParam());
  const int n = 2 + GetParam() % 7;
  std::vector<double> v(n);
  for (double& x : v) x = rng.Normal(0.0, 2.0);
  auto w = ProjectToSimplex(v);

  double sum = 0.0;
  for (double x : w) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);

  // KKT: v_i - w_i is constant (=theta) across active coordinates, and
  // v_i <= theta on inactive ones.
  double theta = -1e18;
  for (int i = 0; i < n; ++i) {
    if (w[i] > 1e-12) theta = std::max(theta, v[i] - w[i]);
  }
  for (int i = 0; i < n; ++i) {
    if (w[i] > 1e-12) {
      EXPECT_NEAR(v[i] - w[i], theta, 1e-9);
    } else {
      EXPECT_LE(v[i], theta + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest, ::testing::Range(0, 20));

TEST(MinNormTest, SingleTaskIsTrivial) {
  auto w = MinNormWeights({{4.0}});
  EXPECT_NEAR(w[0], 1.0, 1e-9);
}

TEST(MinNormTest, TwoOpposedVectorsClosedForm) {
  // g1 = (1, 0), g2 = (-1, 1): min-norm combination known analytically.
  // M = [[1, -1], [-1, 2]]; optimum w1 solves min (w,1-w):
  // f(w) = w^2 - 2w(1-w)(1) ... easier: gamma* for PCA pair formula:
  // w1 = (g2.g2 - g1.g2) / ||g1 - g2||^2 = (2+1)/(1+2+2*1)= 3/5.
  auto w = MinNormWeights({{1.0, -1.0}, {-1.0, 2.0}});
  EXPECT_NEAR(w[0], 0.6, 1e-4);
  EXPECT_NEAR(w[1], 0.4, 1e-4);
}

TEST(MinNormTest, IdenticalVectorsGiveAnyConvexCombo) {
  // All Gram entries equal: every w on the simplex has the same norm; the
  // solver must return a valid simplex point.
  auto w = MinNormWeights({{1.0, 1.0}, {1.0, 1.0}});
  EXPECT_NEAR(w[0] + w[1], 1.0, 1e-9);
  EXPECT_GE(w[0], 0.0);
  EXPECT_GE(w[1], 0.0);
}

// Property: the returned point has norm no larger than any vertex and any
// random simplex point (approximate optimality check).
class MinNormPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MinNormPropertyTest, NoRandomPointBeatsSolver) {
  Rng rng(100 + GetParam());
  const int k = 2 + GetParam() % 5;
  const int d = 6;
  std::vector<std::vector<double>> g(k, std::vector<double>(d));
  for (auto& row : g) {
    for (double& x : row) x = rng.Normal(0.0, 1.0);
  }
  std::vector<std::vector<double>> gram(k, std::vector<double>(k, 0.0));
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      for (int c = 0; c < d; ++c) gram[i][j] += g[i][c] * g[j][c];
    }
  }
  auto w = MinNormWeights(gram);
  auto norm2 = [&](const std::vector<double>& u) {
    double s = 0.0;
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) s += u[i] * u[j] * gram[i][j];
    }
    return s;
  };
  const double solver_norm = norm2(w);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> u(k);
    double sum = 0.0;
    for (double& x : u) {
      x = -std::log(std::max(1e-12f, rng.Uniform()));
      sum += x;
    }
    for (double& x : u) x /= sum;
    EXPECT_LE(solver_norm, norm2(u) + 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinNormPropertyTest, ::testing::Range(0, 15));

TEST(LinearSolveTest, HandComputed2x2) {
  auto x = SolveLinear({{2.0, 1.0}, {1.0, 3.0}}, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-9);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-9);
}

TEST(LinearSolveTest, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  auto x = SolveLinear({{0.0, 1.0}, {1.0, 0.0}}, {2.0, 3.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 3.0, 1e-9);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-9);
}

TEST(LinearSolveTest, SingularReturnsError) {
  auto x = SolveLinear({{1.0, 2.0}, {2.0, 4.0}}, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

TEST(LinearSolveTest, RandomSystemsRoundTrip) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 2 + trial % 4;
    std::vector<std::vector<double>> a(n, std::vector<double>(n));
    std::vector<double> x_true(n);
    for (auto& row : a) {
      for (double& v : row) v = rng.Normal(0.0, 1.0);
    }
    for (int i = 0; i < n; ++i) {
      a[i][i] += 3.0;  // keep well-conditioned
      x_true[i] = rng.Normal(0.0, 1.0);
    }
    std::vector<double> b(n, 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) b[i] += a[i][j] * x_true[j];
    }
    auto x = SolveLinear(a, b);
    ASSERT_TRUE(x.ok());
    for (int i = 0; i < n; ++i) EXPECT_NEAR(x.value()[i], x_true[i], 1e-8);
  }
}

}  // namespace
}  // namespace mocograd
