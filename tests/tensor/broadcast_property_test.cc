// Property-based sweep of the broadcasting semantics: for a grid of shape
// pairs, elementwise ops must match an independent index-arithmetic oracle,
// and SumToShape must be the exact adjoint of broadcasting.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "base/rng.h"
#include "tensor/ops.h"

namespace mocograd {
namespace {

namespace t = tops;

using ShapePair = std::tuple<std::vector<int64_t>, std::vector<int64_t>>;

class BroadcastPropertyTest : public ::testing::TestWithParam<ShapePair> {};

// Oracle: resolve the broadcast value of tensor `x` (shape padded to the
// output rank) at output coordinate `coord`.
float At(const Tensor& x, const Shape& out, const std::vector<int64_t>& coord) {
  const int off = out.Rank() - x.Rank();
  int64_t flat = 0;
  const auto strides = x.shape().Strides();
  for (int d = 0; d < x.Rank(); ++d) {
    const int64_t c = x.shape().Dim(d) == 1 ? 0 : coord[d + off];
    flat += c * strides[d];
  }
  return x.data()[flat];
}

TEST_P(BroadcastPropertyTest, AddMulMatchOracle) {
  const auto& [da, db] = GetParam();
  Rng rng(static_cast<uint64_t>(da.size() * 100 + db.size()));
  Tensor a = Tensor::Randn(Shape(da), rng);
  Tensor b = Tensor::Randn(Shape(db), rng);
  Tensor sum = t::Add(a, b);
  Tensor prod = t::Mul(a, b);
  const Shape& out = sum.shape();
  EXPECT_EQ(out, Shape::Broadcast(a.shape(), b.shape()));

  std::vector<int64_t> coord(out.Rank(), 0);
  for (int64_t flat = 0; flat < out.NumElements(); ++flat) {
    int64_t rem = flat;
    const auto strides = out.Strides();
    for (int d = 0; d < out.Rank(); ++d) {
      coord[d] = rem / strides[d];
      rem -= coord[d] * strides[d];
    }
    const float av = At(a, out, coord);
    const float bv = At(b, out, coord);
    ASSERT_FLOAT_EQ(sum[flat], av + bv) << "flat " << flat;
    ASSERT_FLOAT_EQ(prod[flat], av * bv) << "flat " << flat;
  }
}

TEST_P(BroadcastPropertyTest, SumToShapeIsAdjointOfBroadcast) {
  // <broadcast(a), g> == <a, SumToShape(g, a.shape)> for all a, g.
  const auto& [da, db] = GetParam();
  Rng rng(17);
  Tensor a = Tensor::Randn(Shape(da), rng);
  Tensor b = Tensor::Randn(Shape(db), rng);
  const Shape out = Shape::Broadcast(a.shape(), b.shape());
  Tensor g = Tensor::Randn(out, rng);

  // broadcast(a) realized via a + zeros(out).
  Tensor a_bc = t::Add(a, Tensor::Zeros(out));
  const double lhs = t::Dot(a_bc, g);
  Tensor reduced = t::SumToShape(g, a.shape());
  const double rhs = t::Dot(a, reduced);
  EXPECT_NEAR(lhs, rhs, 1e-3 * (1.0 + std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, BroadcastPropertyTest,
    ::testing::Values(
        ShapePair{{3, 4}, {3, 4}},
        ShapePair{{3, 4}, {4}},
        ShapePair{{3, 1}, {1, 4}},
        ShapePair{{2, 3, 4}, {3, 4}},
        ShapePair{{2, 3, 4}, {1, 4}},
        ShapePair{{2, 1, 4}, {3, 1}},
        ShapePair{{5}, {1}},
        ShapePair{{1}, {4, 5}},
        ShapePair{{2, 2, 2, 2}, {2, 2}},
        ShapePair{{6, 1, 3}, {6, 2, 1}}));

TEST(BroadcastFailureTest, IncompatibleShapesAbort) {
  Tensor a = Tensor::Zeros({2, 3});
  Tensor b = Tensor::Zeros({2, 4});
  EXPECT_DEATH(tops::Add(a, b), "cannot broadcast");
  EXPECT_DEATH(Shape::Broadcast({3}, {4}), "cannot broadcast");
}

TEST(ShapeFailureTest, OutOfRangeAndMismatches) {
  Tensor a = Tensor::Zeros({2, 3});
  EXPECT_DEATH(a.Dim(5), "");
  EXPECT_DEATH(a.Reshape({4, 2}), "Reshape");
  EXPECT_DEATH(tops::MatMul(a, Tensor::Zeros({4, 2})), "inner dims");
  EXPECT_DEATH(tops::SliceCols(a, 2, 5), "out of range");
  EXPECT_DEATH(tops::Dot(a, Tensor::Zeros({5})), "size mismatch");
  EXPECT_DEATH(tops::GatherRows(a, {7}), "out of range");
}

}  // namespace
}  // namespace mocograd
