// Property tests for the register-blocked SIMD Gemm microkernel
// (tensor/gemm.cc): exhaustive small-shape sweep against a double-precision
// naive reference, with non-contiguous leading dimensions, both transpose
// flags, and the alpha/beta edge cases — plus regression tests for the
// IEEE-754 corners the old kernel got wrong (a zero A value used to skip
// the B row entirely, swallowing NaN/Inf from B; beta == 0 now overwrites C
// without reading it, BLAS-style).

#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "base/rng.h"
#include "base/scratch.h"
#include "base/thread_pool.h"

namespace mocograd {
namespace {

// Reference C = alpha*op(A)*op(B) + beta*C with double accumulation and
// BLAS beta==0 semantics (C written, never read).
void ReferenceGemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k,
                   float alpha, const std::vector<float>& a, int64_t lda,
                   const std::vector<float>& b, int64_t ldb, float beta,
                   std::vector<float>& c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * lda + i] : a[i * lda + p];
        const float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      const float scaled = alpha * static_cast<float>(acc);
      c[i * ldc + j] =
          beta == 0.0f ? scaled : scaled + beta * c[i * ldc + j];
    }
  }
}

TEST(GemmMicrokernelTest, SmallShapeSweepVsReference) {
  // Covers every row-block remainder (m % 6), panel remainder (n % 16) and
  // lane tail (k parity), including shapes smaller than one tile.
  const int dims[] = {1, 2, 3, 7, 8, 9, 17, 64};
  const struct {
    float alpha, beta;
  } scalings[] = {{1.0f, 0.0f}, {2.5f, -1.0f}, {-1.0f, 1.0f}, {0.0f, 0.5f}};

  for (int m : dims) {
    for (int n : dims) {
      for (int k : dims) {
        for (bool ta : {false, true}) {
          for (bool tb : {false, true}) {
            const auto& s = scalings[(m + n + k + ta + 2 * tb) %
                                     (sizeof(scalings) / sizeof(scalings[0]))];
            Rng rng(static_cast<uint64_t>(m * 1009 + n * 131 + k * 17 +
                                          ta * 3 + tb * 5));
            // Non-contiguous storage: every matrix carries padding columns
            // that the kernel must stride over, never read past.
            const int64_t lda = (ta ? m : k) + 3;
            const int64_t ldb = (tb ? k : n) + 5;
            const int64_t ldc = n + 2;
            std::vector<float> a(static_cast<size_t>(ta ? k : m) * lda);
            std::vector<float> b(static_cast<size_t>(tb ? n : k) * ldb);
            std::vector<float> c0(static_cast<size_t>(m) * ldc);
            for (float& v : a) v = rng.Normal();
            for (float& v : b) v = rng.Normal();
            for (float& v : c0) v = rng.Normal();

            std::vector<float> c_fast = c0, c_ref = c0;
            Gemm(ta, tb, m, n, k, s.alpha, a.data(), lda, b.data(), ldb,
                 s.beta, c_fast.data(), ldc);
            ReferenceGemm(ta, tb, m, n, k, s.alpha, a, lda, b, ldb, s.beta,
                          c_ref, ldc);

            for (int64_t i = 0; i < m; ++i) {
              for (int64_t j = 0; j < ldc; ++j) {
                const float got = c_fast[i * ldc + j];
                const float want = c_ref[i * ldc + j];
                ASSERT_NEAR(got, want, 1e-3f + 1e-4f * std::fabs(want))
                    << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta
                    << " tb=" << tb << " alpha=" << s.alpha
                    << " beta=" << s.beta << " at (" << i << "," << j << ")";
              }
            }
          }
        }
      }
    }
  }
}

// The macro-kernel's cache blocking (mc,kc,nc) must never change *what* is
// computed, only the loop order it is computed in — modulo the documented
// kc-slice summation order, every block configuration has to agree with the
// reference to float tolerance. Sweeping deliberately tiny and ragged
// blocks forces every boundary in the blocked path: mc that does not divide
// m, kc slices of uneven depth, nc groups narrower than one panel group,
// and blocks larger than the whole problem.
TEST(GemmMicrokernelTest, TinyRaggedBlockSweepVsReference) {
  struct Blocks {
    int64_t mc, kc, nc;
  };
  const Blocks configs[] = {
      {1, 1, 16},    // degenerate: one row, one k step at a time
      {7, 5, 32},    // ragged everything
      {2, 3, 16},    // mc below the 6-row tile
      {5, 7, 48},    // nc not a power of two
      {1000, 1000, 1008},  // blocks larger than any test shape
  };
  // Shapes chosen to cross the blocked-path dispatch threshold
  // (m >= 16, n >= 256) as well as the streaming/GEMV shapes, so every
  // path runs under every blocking.
  const struct {
    int64_t m, n, k;
  } shapes[] = {
      {17, 256, 19}, {16, 272, 64}, {33, 304, 9},
      {1, 300, 40},  {40, 1, 300},  {12, 512, 31},  {6, 40, 1},
  };
  for (const Blocks& blk : configs) {
    SetGemmBlockingForTest(blk.mc, blk.kc, blk.nc);
    for (const auto& s : shapes) {
      for (bool ta : {false, true}) {
        for (bool tb : {false, true}) {
          Rng rng(static_cast<uint64_t>(s.m * 31 + s.n * 7 + s.k * 3 +
                                        blk.mc * 1009 + blk.kc * 131 +
                                        blk.nc + ta + 2 * tb));
          const int64_t lda = (ta ? s.m : s.k) + 1;
          const int64_t ldb = (tb ? s.k : s.n) + 2;
          const int64_t ldc = s.n + 1;
          std::vector<float> a(static_cast<size_t>(ta ? s.k : s.m) * lda);
          std::vector<float> b(static_cast<size_t>(tb ? s.n : s.k) * ldb);
          std::vector<float> c0(static_cast<size_t>(s.m) * ldc);
          for (float& v : a) v = rng.Normal();
          for (float& v : b) v = rng.Normal();
          for (float& v : c0) v = rng.Normal();

          std::vector<float> c_fast = c0, c_ref = c0;
          Gemm(ta, tb, s.m, s.n, s.k, 1.5f, a.data(), lda, b.data(), ldb,
               0.5f, c_fast.data(), ldc);
          ReferenceGemm(ta, tb, s.m, s.n, s.k, 1.5f, a, lda, b, ldb, 0.5f,
                        c_ref, ldc);
          for (int64_t i = 0; i < s.m; ++i) {
            for (int64_t j = 0; j < s.n; ++j) {
              const float got = c_fast[i * ldc + j];
              const float want = c_ref[i * ldc + j];
              ASSERT_NEAR(got, want, 1e-3f + 1e-4f * std::fabs(want))
                  << "blocks=(" << blk.mc << "," << blk.kc << "," << blk.nc
                  << ") m=" << s.m << " n=" << s.n << " k=" << s.k
                  << " ta=" << ta << " tb=" << tb << " at (" << i << "," << j
                  << ")";
            }
          }
        }
      }
    }
  }
  SetGemmBlockingForTest(0, 0, 0);  // restore env/default configuration
}

// SetGemmBlockingForTest sanitizes its inputs the same way the env knob
// does: nc snaps up to a whole panel group, and non-positive values reset
// to the default configuration.
TEST(GemmMicrokernelTest, BlockingOverrideRoundsAndResets) {
  const GemmBlockSizes defaults = GemmBlocking();
  SetGemmBlockingForTest(10, 24, 17);
  GemmBlockSizes b = GemmBlocking();
  EXPECT_EQ(b.mc, 10);
  EXPECT_EQ(b.kc, 24);
  EXPECT_EQ(b.nc % 16, 0);
  EXPECT_GE(b.nc, 17);
  SetGemmBlockingForTest(0, 0, 0);
  b = GemmBlocking();
  EXPECT_EQ(b.mc, defaults.mc);
  EXPECT_EQ(b.kc, defaults.kc);
  EXPECT_EQ(b.nc, defaults.nc);
}

// Garbage in MOCOGRAD_GEMM_BLOCK must fall back to the default blocking
// without crashing — the GetEnvIntList contract (src/base/env.h) is that an
// env typo never aborts a training run. SetGemmBlockingForTest(0,0,0)
// re-reads the env, so each garbage value exercises the same parse path the
// first Gemm call takes.
TEST(GemmMicrokernelTest, GarbageGemmBlockEnvFallsBackToDefaults) {
  unsetenv("MOCOGRAD_GEMM_BLOCK");
  SetGemmBlockingForTest(0, 0, 0);
  const GemmBlockSizes defaults = GemmBlocking();

  const char* garbage[] = {"banana", "10,24", "10,24,32,64", "10,,32",
                           "0,24,32", "-96,256,256", "99999999999999999999",
                           "10,24,32trailing"};
  for (const char* value : garbage) {
    ASSERT_EQ(setenv("MOCOGRAD_GEMM_BLOCK", value, 1), 0);
    SetGemmBlockingForTest(0, 0, 0);
    const GemmBlockSizes b = GemmBlocking();
    EXPECT_EQ(b.mc, defaults.mc) << "value: " << value;
    EXPECT_EQ(b.kc, defaults.kc) << "value: " << value;
    EXPECT_EQ(b.nc, defaults.nc) << "value: " << value;

    // And a Gemm under the fallen-back configuration still computes.
    Rng rng(7);
    const int64_t m = 5, n = 6, k = 4;
    std::vector<float> a(m * k), bm(k * n), c(m * n, 0.0f), c_ref = c;
    for (float& v : a) v = rng.Normal();
    for (float& v : bm) v = rng.Normal();
    Gemm(false, false, m, n, k, 1.0f, a.data(), k, bm.data(), n, 0.0f,
         c.data(), n);
    ReferenceGemm(false, false, m, n, k, 1.0f, a, k, bm, n, 0.0f, c_ref, n);
    for (size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], c_ref[i], 1e-4f) << "value: " << value;
    }
  }
  unsetenv("MOCOGRAD_GEMM_BLOCK");
  SetGemmBlockingForTest(0, 0, 0);
}

// The point of the scratch arena: once a Gemm shape has run a couple of
// times, later calls must not touch the heap at all — packing buffers come
// from each thread's settled arena. A new backing chunk in steady state
// means a regression back to per-call allocation.
TEST(GemmMicrokernelTest, SteadyStateGemmAllocatesNoChunks) {
  const int saved_threads = ThreadPool::GlobalNumThreads();
  ThreadPool::SetGlobalNumThreads(1);
  const int64_t m = 64, n = 320, k = 48;  // blocked path, packs A and B
  Rng rng(0xabcdef);
  std::vector<float> a(m * k), b(k * n), c(m * n, 0.0f);
  for (float& v : a) v = rng.Normal();
  for (float& v : b) v = rng.Normal();
  auto run = [&] {
    Gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c.data(), n);
    // The m==1 GEMV path allocates its accumulator from the arena too.
    Gemm(false, false, 1, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c.data(), n);
  };
  run();
  run();  // reach the high-water mark
  const int64_t before = ScratchArena::TotalChunkAllocs();
  for (int i = 0; i < 20; ++i) run();
  EXPECT_EQ(ScratchArena::TotalChunkAllocs(), before)
      << "Gemm allocated backing chunks after warm-up";
  ThreadPool::SetGlobalNumThreads(saved_threads);
}

// Regression: the old kernel skipped the whole B row whenever an A value
// was exactly zero, so NaN/Inf in B silently vanished from the product.
// IEEE-754 says 0 * NaN = NaN and 0 * Inf = NaN; they must propagate.
TEST(GemmMicrokernelTest, NanInBPropagatesThroughZeroA) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();

  // A zero A value multiplies the B row holding the NaN; the old kernel
  // skipped that row and returned 4 here instead of NaN.
  std::vector<float> a = {0.0f, 2.0f};                  // 1x2
  std::vector<float> b = {nan, 1.0f, 2.0f, 3.0f};      // 2x2
  std::vector<float> c(2, 0.0f);
  Gemm(false, false, 1, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 0.0f, c.data(),
       2);
  EXPECT_TRUE(std::isnan(c[0])) << "0 * NaN must stay NaN, got " << c[0];
  EXPECT_FLOAT_EQ(c[1], 6.0f);  // 0*1 + 2*3

  // Same for Inf: 0 * Inf = NaN.
  b[0] = inf;
  Gemm(false, false, 1, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 0.0f, c.data(),
       2);
  EXPECT_TRUE(std::isnan(c[0])) << "0 * Inf must become NaN, got " << c[0];
}

// beta == 0 means "overwrite": stale NaN in the output buffer must not
// leak into the result via 0 * NaN.
TEST(GemmMicrokernelTest, BetaZeroOverwritesPoisonedC) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> a = {1.0f};
  std::vector<float> b = {2.0f};
  std::vector<float> c = {nan};
  Gemm(false, false, 1, 1, 1, 1.0f, a.data(), 1, b.data(), 1, 0.0f, c.data(),
       1);
  EXPECT_FLOAT_EQ(c[0], 2.0f);
}

}  // namespace
}  // namespace mocograd
