#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "base/rng.h"

namespace mocograd {
namespace {

// Naive triple-loop reference for C = alpha*op(A)*op(B) + beta*C.
void ReferenceGemm(bool ta, bool tb, int64_t m, int64_t n, int64_t k,
                   float alpha, const std::vector<float>& a, int64_t lda,
                   const std::vector<float>& b, int64_t ldb, float beta,
                   std::vector<float>& c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * lda + i] : a[i * lda + p];
        const float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * ldc + j] = alpha * static_cast<float>(acc) + beta * c[i * ldc + j];
    }
  }
}

// (m, n, k, trans_a, trans_b, alpha, beta)
using GemmCase = std::tuple<int, int, int, bool, bool, float, float>;

class GemmPropertyTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmPropertyTest, MatchesNaiveReference) {
  const auto [m, n, k, ta, tb, alpha, beta] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 131 + n * 17 + k + ta * 3 + tb * 5));

  const int64_t lda = ta ? m : k;
  const int64_t ldb = tb ? k : n;
  std::vector<float> a(static_cast<size_t>(ta ? k * m : m * k));
  std::vector<float> b(static_cast<size_t>(tb ? n * k : k * n));
  for (float& v : a) v = rng.Normal();
  for (float& v : b) v = rng.Normal();
  std::vector<float> c0(static_cast<size_t>(m) * n);
  for (float& v : c0) v = rng.Normal();

  std::vector<float> c_fast = c0, c_ref = c0;
  Gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
       c_fast.data(), n);
  ReferenceGemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c_ref, n);

  for (size_t i = 0; i < c_fast.size(); ++i) {
    EXPECT_NEAR(c_fast[i], c_ref[i], 1e-3f + 1e-4f * std::fabs(c_ref[i]))
        << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndTransposes, GemmPropertyTest,
    ::testing::Values(
        GemmCase{1, 1, 1, false, false, 1.0f, 0.0f},
        GemmCase{3, 4, 5, false, false, 1.0f, 0.0f},
        GemmCase{3, 4, 5, true, false, 1.0f, 0.0f},
        GemmCase{3, 4, 5, false, true, 1.0f, 0.0f},
        GemmCase{3, 4, 5, true, true, 1.0f, 0.0f},
        GemmCase{7, 2, 9, false, false, 2.5f, 1.0f},
        GemmCase{2, 8, 3, true, false, -1.0f, 0.5f},
        GemmCase{16, 16, 16, false, true, 1.0f, 1.0f},
        GemmCase{1, 17, 6, true, true, 0.5f, 2.0f},
        GemmCase{13, 1, 13, false, false, 1.0f, 0.0f}));

TEST(GemmTest, ZeroSizedDimensionsAreNoOps) {
  std::vector<float> a(4, 1.0f), b(4, 1.0f), c(4, 7.0f);
  Gemm(false, false, 0, 2, 2, 1.0f, a.data(), 2, b.data(), 2, 1.0f, c.data(),
       2);
  EXPECT_FLOAT_EQ(c[0], 7.0f);
  // k == 0: C scaled by beta only.
  Gemm(false, false, 2, 2, 0, 1.0f, a.data(), 0, b.data(), 2, 0.5f, c.data(),
       2);
  EXPECT_FLOAT_EQ(c[0], 3.5f);
}

TEST(GemmTest, AlphaZeroOnlyScalesC) {
  std::vector<float> a(4, 3.0f), b(4, 3.0f), c(4, 2.0f);
  Gemm(false, false, 2, 2, 2, 0.0f, a.data(), 2, b.data(), 2, 2.0f, c.data(),
       2);
  for (float v : c) EXPECT_FLOAT_EQ(v, 4.0f);
}

}  // namespace
}  // namespace mocograd
