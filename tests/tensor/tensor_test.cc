#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace mocograd {
namespace {

namespace t = tops;

TEST(ShapeTest, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.Rank(), 3);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s.Dim(1), 3);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
  EXPECT_EQ(s.Strides(), (std::vector<int64_t>{12, 4, 1}));
}

TEST(ShapeTest, ScalarShape) {
  Shape s{};
  EXPECT_EQ(s.Rank(), 0);
  EXPECT_EQ(s.NumElements(), 1);
}

TEST(ShapeTest, BroadcastRules) {
  EXPECT_EQ(Shape::Broadcast({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(Shape::Broadcast({2, 1}, {1, 3}), (Shape{2, 3}));
  EXPECT_EQ(Shape::Broadcast({4, 1, 5}, {2, 1}), (Shape{4, 2, 5}));
  EXPECT_TRUE(Shape::BroadcastsTo({3}, {2, 3}));
  EXPECT_FALSE(Shape::BroadcastsTo({2}, {2, 3}));
}

TEST(TensorTest, FactoriesAndAccess) {
  Tensor z = Tensor::Zeros({2, 2});
  EXPECT_EQ(z.NumElements(), 4);
  EXPECT_FLOAT_EQ(z[3], 0.0f);

  Tensor o = Tensor::Ones({3});
  EXPECT_FLOAT_EQ(o[1], 1.0f);

  Tensor f = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(f.At(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(f.At(0, 1), 2.0f);

  Tensor a = Tensor::Arange(5);
  EXPECT_FLOAT_EQ(a[4], 4.0f);

  Tensor s = Tensor::Scalar(7.0f);
  EXPECT_FLOAT_EQ(s.Item(), 7.0f);
}

TEST(TensorTest, SharedStorageSemantics) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = a;  // shares storage
  b[0] = 9.0f;
  EXPECT_FLOAT_EQ(a[0], 9.0f);
  EXPECT_TRUE(a.SharesStorageWith(b));

  Tensor c = a.Clone();
  c[0] = 5.0f;
  EXPECT_FLOAT_EQ(a[0], 9.0f);
  EXPECT_FALSE(a.SharesStorageWith(c));
}

TEST(TensorTest, ReshapeSharesAndInfers) {
  Tensor a = Tensor::Arange(6);
  Tensor m = a.Reshape({2, -1});
  EXPECT_EQ(m.shape(), (Shape{2, 3}));
  EXPECT_TRUE(m.SharesStorageWith(a));
  m.At(1, 2) = 42.0f;
  EXPECT_FLOAT_EQ(a[5], 42.0f);
}

TEST(TensorTest, RandomFactoriesDeterministic) {
  Rng rng1(7), rng2(7);
  Tensor a = Tensor::Randn({4, 4}, rng1);
  Tensor b = Tensor::Randn({4, 4}, rng2);
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]);
  }
}

TEST(OpsTest, ElementwiseSameShape) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  Tensor sum = t::Add(a, b);
  EXPECT_FLOAT_EQ(sum[0], 11.0f);
  EXPECT_FLOAT_EQ(sum[3], 44.0f);
  Tensor prod = t::Mul(a, b);
  EXPECT_FLOAT_EQ(prod[2], 90.0f);
  Tensor diff = t::Sub(b, a);
  EXPECT_FLOAT_EQ(diff[1], 18.0f);
  Tensor quot = t::Div(b, a);
  EXPECT_FLOAT_EQ(quot[3], 10.0f);
}

TEST(OpsTest, BroadcastRowVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = Tensor::FromVector({3}, {10, 20, 30});
  Tensor sum = t::Add(a, row);
  EXPECT_EQ(sum.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(sum.At(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(sum.At(1, 2), 36.0f);
}

TEST(OpsTest, BroadcastColVector) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor col = Tensor::FromVector({2, 1}, {100, 200});
  Tensor sum = t::Add(a, col);
  EXPECT_FLOAT_EQ(sum.At(0, 2), 103.0f);
  EXPECT_FLOAT_EQ(sum.At(1, 0), 204.0f);
}

TEST(OpsTest, MatMulAgainstHandComputed) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = t::MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(OpsTest, MatMulTransposedOperands) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  // a^T: [3,2]; a^T x b^T undefined; test (a^T)^T path via trans flags:
  Tensor at = t::Transpose2D(a);
  Tensor c1 = t::MatMul(at, b, /*trans_a=*/true, /*trans_b=*/false);
  Tensor c0 = t::MatMul(a, b);
  for (int64_t i = 0; i < c0.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(c1[i], c0[i]);
  }
  Tensor bt = t::Transpose2D(b);
  Tensor c2 = t::MatMul(a, bt, /*trans_a=*/false, /*trans_b=*/true);
  for (int64_t i = 0; i < c0.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(c2[i], c0[i]);
  }
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t::SumAll(a), 21.0f);
  EXPECT_FLOAT_EQ(t::MeanAll(a), 3.5f);
  EXPECT_FLOAT_EQ(t::MaxAll(a), 6.0f);
  EXPECT_NEAR(t::Norm(Tensor::FromVector({2}, {3, 4})), 5.0f, 1e-6);
  EXPECT_FLOAT_EQ(t::Dot(a, a), 91.0f);

  Tensor s0 = t::Sum(a, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0[0], 5.0f);
  EXPECT_FLOAT_EQ(s0[2], 9.0f);

  Tensor s1 = t::Sum(a, 1, /*keepdims=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1[0], 6.0f);
  EXPECT_FLOAT_EQ(s1[1], 15.0f);

  Tensor m1 = t::Mean(a, 1);
  EXPECT_FLOAT_EQ(m1[0], 2.0f);
  EXPECT_FLOAT_EQ(m1[1], 5.0f);
}

TEST(OpsTest, SumToShapeReducesBroadcastAxes) {
  Tensor g = Tensor::Ones({2, 3});
  Tensor r = t::SumToShape(g, Shape{3});
  EXPECT_EQ(r.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(r[0], 2.0f);

  Tensor c = t::SumToShape(g, Shape{2, 1});
  EXPECT_EQ(c.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(c[1], 3.0f);

  Tensor same = t::SumToShape(g, Shape{2, 3});
  EXPECT_TRUE(same.SharesStorageWith(g));
}

TEST(OpsTest, SoftmaxRowsSumsToOne) {
  Rng rng(3);
  Tensor a = Tensor::Randn({5, 7}, rng, 0.0f, 3.0f);
  Tensor s = t::SoftmaxRows(a);
  for (int64_t i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_GT(s.At(i, j), 0.0f);
      sum += s.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(4);
  Tensor a = Tensor::Randn({3, 4}, rng);
  Tensor ls = t::LogSoftmaxRows(a);
  Tensor s = t::SoftmaxRows(a);
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    EXPECT_NEAR(ls[i], std::log(s[i]), 1e-5);
  }
}

TEST(OpsTest, ArgMaxRows) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 5, 2, 9, 0, 3});
  auto idx = t::ArgMaxRows(a);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(OpsTest, GatherScatterRoundTrip) {
  Tensor table = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = t::GatherRows(table, {2, 0, 2});
  EXPECT_EQ(g.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(g.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.At(1, 1), 2.0f);

  Tensor scattered = t::ScatterAddRows(g, {2, 0, 2}, 3);
  EXPECT_FLOAT_EQ(scattered.At(0, 0), 1.0f);   // from row 1 of g
  EXPECT_FLOAT_EQ(scattered.At(2, 0), 10.0f);  // rows 0 and 2 of g
  EXPECT_FLOAT_EQ(scattered.At(1, 0), 0.0f);
}

TEST(OpsTest, SliceColsAndConcatInverse) {
  Tensor a = Tensor::FromVector({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor left = t::SliceCols(a, 0, 2);
  Tensor right = t::SliceCols(a, 2, 2);
  EXPECT_FLOAT_EQ(left.At(1, 1), 6.0f);
  EXPECT_FLOAT_EQ(right.At(0, 0), 3.0f);
  Tensor back = t::Concat({left, right}, 1);
  for (int64_t i = 0; i < a.NumElements(); ++i) {
    EXPECT_FLOAT_EQ(back[i], a[i]);
  }
}

TEST(OpsTest, ConcatAxis0) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 2}, {3, 4, 5, 6});
  Tensor c = t::Concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(c.At(2, 1), 6.0f);
}

TEST(OpsTest, SplitInvertsConcat) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  auto parts = t::Split(a, 1, {1, 2});
  EXPECT_EQ(parts[0].shape(), (Shape{2, 1}));
  EXPECT_EQ(parts[1].shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(parts[0].At(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(parts[1].At(0, 0), 2.0f);
}

TEST(OpsTest, UnaryFunctions) {
  Tensor a = Tensor::FromVector({4}, {-2, -0.5, 0.5, 2});
  Tensor r = t::Relu(a);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[3], 2.0f);
  Tensor s = t::Sigmoid(Tensor::Zeros({1}));
  EXPECT_FLOAT_EQ(s[0], 0.5f);
  Tensor abs = t::Abs(a);
  EXPECT_FLOAT_EQ(abs[0], 2.0f);
  Tensor sign = t::Sign(a);
  EXPECT_FLOAT_EQ(sign[0], -1.0f);
  EXPECT_FLOAT_EQ(sign[2], 1.0f);
  Tensor cl = t::Clamp(a, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(cl[0], -1.0f);
  EXPECT_FLOAT_EQ(cl[3], 1.0f);
}

TEST(OpsTest, InPlaceHelpers) {
  Tensor x = Tensor::FromVector({3}, {1, 2, 3});
  Tensor y = Tensor::FromVector({3}, {10, 10, 10});
  t::Axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[2], 16.0f);
  t::ScaleInPlace(y, 0.5f);
  EXPECT_FLOAT_EQ(y[0], 6.0f);
  t::AddInPlace(y, x);
  EXPECT_FLOAT_EQ(y[1], 9.0f);
}

TEST(Im2ColTest, IdentityKernelLayout) {
  // 1x1 kernel, stride 1, no padding: im2col is the identity layout.
  tops::Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 1;
  spec.kernel = 1;
  spec.stride = 1;
  spec.padding = 0;
  Tensor x = Tensor::Arange(2 * 3 * 3).Reshape({2, 3, 3});
  std::vector<float> cols(2 * 9);
  t::Im2Col(x.data(), spec, 3, 3, cols.data());
  for (int i = 0; i < 18; ++i) EXPECT_FLOAT_EQ(cols[i], float(i));
}

TEST(Im2ColTest, PaddingProducesZeros) {
  tops::Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  Tensor x = Tensor::Ones({1, 2, 2});
  std::vector<float> cols(9 * 4);
  t::Im2Col(x.data(), spec, 2, 2, cols.data());
  // First patch (output (0,0)) has its top-left corner in padding.
  EXPECT_FLOAT_EQ(cols[0 * 4 + 0], 0.0f);  // (ki=0,kj=0) at output 0
  EXPECT_FLOAT_EQ(cols[4 * 4 + 0], 1.0f);  // center tap sees the image
}

TEST(Im2ColTest, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint property).
  tops::Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 1;
  spec.kernel = 3;
  spec.stride = 2;
  spec.padding = 1;
  const int64_t h = 5, w = 4;
  const int64_t oh = spec.OutDim(h), ow = spec.OutDim(w);
  const int64_t patch = spec.in_channels * 9;
  Rng rng(11);
  Tensor x = Tensor::Randn({2, h, w}, rng);
  std::vector<float> cols(patch * oh * ow);
  t::Im2Col(x.data(), spec, h, w, cols.data());

  Tensor y = Tensor::Randn({patch * oh * ow}, rng);
  double lhs = 0.0;
  for (size_t i = 0; i < cols.size(); ++i) lhs += double(cols[i]) * y[i];

  Tensor xg = Tensor::Zeros({2, h, w});
  t::Col2Im(y.data(), spec, h, w, xg.data());
  double rhs = 0.0;
  for (int64_t i = 0; i < x.NumElements(); ++i) {
    rhs += double(x[i]) * xg[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace mocograd
