#ifndef MOCOGRAD_TESTS_TESTING_GRADCHECK_H_
#define MOCOGRAD_TESTS_TESTING_GRADCHECK_H_

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace mocograd {
namespace testing {

/// Checks autograd gradients against central finite differences.
///
/// `f` maps leaf Variables (built from `inputs`, all requires_grad) to a
/// scalar ([1]) Variable. Tolerances are sized for float32 kernels.
inline void ExpectGradientsClose(
    const std::function<autograd::Variable(
        const std::vector<autograd::Variable>&)>& f,
    const std::vector<Tensor>& inputs, float eps = 1e-2f, float atol = 2e-2f,
    float rtol = 5e-2f) {
  using autograd::Variable;

  std::vector<Variable> vars;
  vars.reserve(inputs.size());
  for (const Tensor& t : inputs) {
    vars.emplace_back(t.Clone(), /*requires_grad=*/true);
  }
  Variable out = f(vars);
  ASSERT_EQ(out.NumElements(), 1) << "gradcheck target must be scalar";
  out.Backward();

  for (size_t vi = 0; vi < vars.size(); ++vi) {
    ASSERT_TRUE(vars[vi].has_grad()) << "no grad for input " << vi;
    const Tensor& analytic = vars[vi].grad();
    Tensor& x = vars[vi].mutable_value();
    for (int64_t i = 0; i < x.NumElements(); ++i) {
      const float orig = x[i];
      x[i] = orig + eps;
      const float up = f(vars).value().Item();
      x[i] = orig - eps;
      const float down = f(vars).value().Item();
      x[i] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float a = analytic[i];
      const float tol = atol + rtol * std::fabs(numeric);
      EXPECT_NEAR(a, numeric, tol)
          << "input " << vi << " element " << i;
    }
  }
}

}  // namespace testing
}  // namespace mocograd

#endif  // MOCOGRAD_TESTS_TESTING_GRADCHECK_H_
