// Behavior tests for tools/mg_analyze.cc: each forbidden pattern is planted
// in a fixture tree and the real binary (path injected via MG_ANALYZE_BIN)
// must exit non-zero naming the right rule; clean trees and
// mg_analyze:allow() annotations must pass. The `analyze` ctest runs the
// same binary over the actual repository.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct AnalyzeResult {
  int exit_code = -1;
  std::string output;
};

AnalyzeResult RunAnalyze(const fs::path& root) {
  const std::string cmd =
      std::string(MG_ANALYZE_BIN) + " " + root.string() + " 2>&1";
  AnalyzeResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to spawn: " << cmd;
  if (pipe == nullptr) return result;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

void WriteFile(const fs::path& p, const std::string& content) {
  fs::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary);
  ASSERT_TRUE(out.good()) << p;
  out << content;
}

// A fresh fixture root per test; README.md documents the one sanctioned
// knob fixtures may reference.
class MgAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "mg_analyze_fixture" /
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    WriteFile(root_ / "README.md",
              "Runtime knobs:\n- `MOCOGRAD_DOCUMENTED_KNOB=n` does a thing\n");
    WriteFile(root_ / "src" / "base" / "ok.cc",
              "namespace mocograd {\nint Fine() { return 1; }\n}\n");
  }

  // Writes a two-kernel table header plus all five tier TUs assigning both
  // fields (the tier-table fixture baseline; tests then mutate one TU).
  void WriteCompleteKernelTable() {
    WriteFile(root_ / "src" / "base" / "vec_kernels.h",
              "struct VecKernels {\n"
              "  const char* name;\n"
              "  void (*axpy)(int n, float a, const float* x, float* y);\n"
              "  void (*dot)(int n, const float* x, const float* y, "
              "float* out);\n"
              "};\n");
    for (const char* tier : {"scalar", "sse", "avx2", "avx512", "neon"}) {
      WriteFile(root_ / "src" / "base" /
                    ("vec_kernels_tier_" + std::string(tier) + ".cc"),
                "#include \"base/vec_kernels.h\"\n"
                "static VecKernels Make() {\n"
                "  VecKernels k;\n"
                "  k.axpy = nullptr;\n"
                "  k.dot = nullptr;\n"
                "  return k;\n"
                "}\n");
    }
  }

  fs::path root_;
};

TEST_F(MgAnalyzeTest, CleanTreePasses) {
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("mg_analyze: OK"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, UsageErrorExitsTwo) {
  const AnalyzeResult r = RunAnalyze(root_ / "no_such_subdir");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// ---------------------------------------------------------------------------
// Ported mg_lint rules.
// ---------------------------------------------------------------------------

TEST_F(MgAnalyzeTest, FlagsRand) {
  WriteFile(root_ / "src" / "core" / "bad.cc",
            "int Noise() { return rand(); }\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[nondeterminism]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad.cc:1"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsTimeAndClock) {
  WriteFile(root_ / "src" / "tensor" / "bad.cc",
            "long Now() { return time(nullptr); }\n"
            "long Ticks() { return clock(); }\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("bad.cc:1: [nondeterminism]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("bad.cc:2: [nondeterminism]"), std::string::npos)
      << r.output;
}

TEST_F(MgAnalyzeTest, RuntimeDoesNotTripTimeRule) {
  WriteFile(root_ / "src" / "base" / "fine.cc",
            "int runtime(int x) { return x; }\n"
            "int Call() { return runtime(3); }\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsUnorderedContainerUse) {
  WriteFile(root_ / "src" / "core" / "bad.cc",
            "#include <unordered_map>\n"
            "std::unordered_map<int, int> g_table;\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // The use site (line 2) is flagged; the #include line is exempt.
  EXPECT_NE(r.output.find("bad.cc:2: [nondeterminism]"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("bad.cc:1:"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsStdReduce) {
  WriteFile(root_ / "src" / "core" / "bad.cc",
            "float Sum(const float* p, int n) {\n"
            "  return std::reduce(p, p + n);\n"
            "}\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[nondeterminism]"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsOpenMpPragma) {
  WriteFile(root_ / "src" / "tensor" / "bad.cc",
            "#pragma omp parallel for\n"
            "void K() {}\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[nondeterminism]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("omp"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsHotPathAllocation) {
  WriteFile(root_ / "src" / "tensor" / "bad.cc",
            "#include <vector>\n"
            "// MG_HOT_PATH\n"
            "void Kernel(std::vector<float>& v) { v.push_back(1.0f); }\n"
            "// MG_HOT_PATH_END\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[hot-path-alloc]"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, HotPathEndClosesRegion) {
  WriteFile(root_ / "src" / "tensor" / "fine.cc",
            "#include <vector>\n"
            "// MG_HOT_PATH\n"
            "void Kernel(const float* x) { (void)x; }\n"
            "// MG_HOT_PATH_END\n"
            "void Setup(std::vector<float>& v) { v.push_back(1.0f); }\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsRawNewInHotPath) {
  WriteFile(root_ / "src" / "tensor" / "bad.cc",
            "// MG_HOT_PATH\n"
            "float* Kernel() { return new float[64]; }\n"
            "// MG_HOT_PATH_END\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[hot-path-alloc]"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsAllocInServeHotPath) {
  // The serving request path (src/serve) carries the same hot-path
  // contract as the kernels: inside its MG_HOT_PATH region all scratch
  // comes from the arena, never the allocator.
  WriteFile(root_ / "src" / "serve" / "bad.cc",
            "#include <vector>\n"
            "// MG_HOT_PATH\n"
            "void Forward(const float* in, int rows) {\n"
            "  std::vector<float> activations(rows);\n"
            "  (void)in;\n"
            "}\n"
            "// MG_HOT_PATH_END\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[hot-path-alloc]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("serve/bad.cc"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsLayeringBackEdge) {
  WriteFile(root_ / "src" / "base" / "bad.cc",
            "#include \"tensor/tensor.h\"\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[layering]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("back-edge"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsSiblingLayerInclude) {
  WriteFile(root_ / "src" / "nn" / "bad.cc",
            "#include \"optim/optimizer.h\"\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[layering]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("sibling"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, DownwardIncludePasses) {
  WriteFile(root_ / "src" / "mtl" / "fine.cc",
            "#include \"core/aggregator.h\"\n"
            "#include \"base/check.h\"\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsBareAssert) {
  WriteFile(root_ / "src" / "base" / "bad.cc",
            "#include <cassert>\n"
            "void F(int x) { assert(x > 0); }\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[bare-assert]"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, StaticAssertPasses) {
  WriteFile(root_ / "src" / "base" / "fine.cc",
            "static_assert(sizeof(int) == 4, \"ILP32/LP64 only\");\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsUndocumentedEnvKnob) {
  WriteFile(root_ / "src" / "base" / "bad.cc",
            "#include \"base/env.h\"\n"
            "int K() { return mocograd::GetEnvInt(\"MOCOGRAD_SECRET_KNOB\", "
            "0, 0, 1); }\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[env-registry]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("MOCOGRAD_SECRET_KNOB"), std::string::npos)
      << r.output;
}

TEST_F(MgAnalyzeTest, DocumentedEnvKnobPasses) {
  WriteFile(root_ / "src" / "base" / "fine.cc",
            "#include \"base/env.h\"\n"
            "int K() { return mocograd::GetEnvInt(\"MOCOGRAD_DOCUMENTED_KNOB"
            "\", 0, 0, 1); }\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, AllowAnnotationOnLineSuppresses) {
  WriteFile(root_ / "src" / "core" / "fine.cc",
            "int Noise() { return rand(); }  "
            "// mg_analyze:allow(nondeterminism) -- fixture\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, AllowAnnotationOnPrecedingLineSuppresses) {
  WriteFile(root_ / "src" / "core" / "fine.cc",
            "// lookup-only table, never iterated:\n"
            "// mg_analyze:allow(nondeterminism)\n"
            "std::unordered_map<int, int> g_table;\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, AllowForWrongRuleDoesNotSuppress) {
  WriteFile(root_ / "src" / "core" / "bad.cc",
            "int Noise() { return rand(); }  // mg_analyze:allow(layering)\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[nondeterminism]"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, LegacyMgLintAllowNoLongerSuppresses) {
  // The mg_lint spelling is dead: stale annotations must not silence the
  // successor (the repo migrated them all in the same change).
  WriteFile(root_ / "src" / "core" / "bad.cc",
            "int Noise() { return rand(); }  "
            "// mg_lint:allow(nondeterminism)\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[nondeterminism]"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, CommentsAndStringsDoNotTrip) {
  WriteFile(root_ / "src" / "base" / "fine.cc",
            "// rand() and time() are banned; std::unordered_map too.\n"
            "/* #pragma omp would be flagged in code */\n"
            "const char* kDoc = \"never call rand() or malloc()\";\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------------------
// Transitive hot-path allocation (the call-graph rule).
// ---------------------------------------------------------------------------

TEST_F(MgAnalyzeTest, FlagsAllocReachableThroughCallChain) {
  WriteFile(root_ / "src" / "tensor" / "bad.cc",
            "void Helper(float* v, int n);\n"
            "void Middle(float* v, int n) { Helper(v, n); }\n"
            "// MG_HOT_PATH\n"
            "void Step(float* v, int n) { Middle(v, n); }\n"
            "// MG_HOT_PATH_END\n"
            "void Helper(float* v, int n) {\n"
            "  float* tmp = new float[n];\n"
            "  (void)v; (void)tmp;\n"
            "}\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // The alloc site is flagged with the full chain back to the hot region.
  EXPECT_NE(r.output.find("bad.cc:7: [hot-path-alloc]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("Step -> Middle -> Helper"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("bad.cc:4"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, FollowsCallsAcrossFiles) {
  WriteFile(root_ / "src" / "tensor" / "hot.cc",
            "#include \"tensor/helper.h\"\n"
            "// MG_HOT_PATH\n"
            "void Kernel(float* v, int n) { GrowBuffer(v, n); }\n"
            "// MG_HOT_PATH_END\n");
  WriteFile(root_ / "src" / "tensor" / "helper.cc",
            "#include <vector>\n"
            "std::vector<float> g_buf;\n"
            "void GrowBuffer(float* v, int n) {\n"
            "  g_buf.resize(n);\n"
            "  (void)v;\n"
            "}\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("helper.cc:4: [hot-path-alloc]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("hot.cc:3"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, ColdPathRegionExemptsCalleeAllocs) {
  // The arena-growth shape: a hot function reaches an explicitly cold
  // capacity excursion. The MG_COLD_PATH bracket is rule semantics, not an
  // escape — no mg_analyze:allow needed.
  WriteFile(root_ / "src" / "tensor" / "fine.cc",
            "// MG_COLD_PATH: capacity growth, runs until warm\n"
            "void Grow(float** v, int n) { *v = new float[n]; }\n"
            "// MG_COLD_PATH_END\n"
            "// MG_HOT_PATH\n"
            "float* Alloc(float** v, int n) {\n"
            "  Grow(v, n);\n"
            "  return *v;\n"
            "}\n"
            "// MG_HOT_PATH_END\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, ColdCallSiteStopsTraversal) {
  // A cold line *inside* a hot region: the call made there is not followed.
  WriteFile(root_ / "src" / "tensor" / "fine.cc",
            "void Setup(float** v, int n) { *v = new float[n]; }\n"
            "// MG_HOT_PATH\n"
            "void Step(float** v, int n) {\n"
            "  // MG_COLD_PATH: one-time init\n"
            "  Setup(v, n);\n"
            "  // MG_COLD_PATH_END\n"
            "  (void)v;\n"
            "}\n"
            "// MG_HOT_PATH_END\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, AmbiguousCalleeNameIsNotFollowed) {
  // Two files define Process(); a hot call in a third file is dropped
  // rather than fanned out to both (the rule errs toward silence).
  WriteFile(root_ / "src" / "tensor" / "a.cc",
            "void Process(float* v, int n) { float* t = new float[n]; "
            "(void)v; (void)t; }\n");
  WriteFile(root_ / "src" / "tensor" / "b.cc",
            "void Process(int* v, int n) { (void)v; (void)n; }\n");
  WriteFile(root_ / "src" / "tensor" / "hot.cc",
            "// MG_HOT_PATH\n"
            "void Step(float* v, int n) { Process(v, n); }\n"
            "// MG_HOT_PATH_END\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, SameFileDefinitionWinsOverAmbiguity) {
  // When the hot caller's own file defines the name, that definition is
  // followed even though another file defines it too.
  WriteFile(root_ / "src" / "tensor" / "other.cc",
            "void Process(int* v, int n) { (void)v; (void)n; }\n");
  WriteFile(root_ / "src" / "tensor" / "hot.cc",
            "void Process(float* v, int n) { float* t = new float[n]; "
            "(void)v; (void)t; }\n"
            "// MG_HOT_PATH\n"
            "void Step(float* v, int n) { Process(v, n); }\n"
            "// MG_HOT_PATH_END\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("hot.cc:1: [hot-path-alloc]"), std::string::npos)
      << r.output;
}

// ---------------------------------------------------------------------------
// ISA tier table completeness + isolation.
// ---------------------------------------------------------------------------

TEST_F(MgAnalyzeTest, CompleteTierTablePasses) {
  WriteCompleteKernelTable();
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, DeletedKernelEntryFailsNamingKernelAndTier) {
  WriteCompleteKernelTable();
  // Drop the dot assignment from the avx2 TU only.
  WriteFile(root_ / "src" / "base" / "vec_kernels_tier_avx2.cc",
            "#include \"base/vec_kernels.h\"\n"
            "static VecKernels Make() {\n"
            "  VecKernels k;\n"
            "  k.axpy = nullptr;\n"
            "  return k;\n"
            "}\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[tier-table]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'dot'"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'avx2'"), std::string::npos) << r.output;
  // The intact kernel and tiers stay quiet.
  EXPECT_EQ(r.output.find("'axpy'"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("'sse'"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, MissingTierTuFails) {
  WriteCompleteKernelTable();
  fs::remove(root_ / "src" / "base" / "vec_kernels_tier_neon.cc");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[tier-table]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("neon"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, AssignmentViaIncludedImplHeaderCounts) {
  // The real tree's shape: tier TUs include a shared impl header that does
  // the field assignments; the rule searches the TU's transitive includes.
  WriteFile(root_ / "src" / "base" / "vec_kernels.h",
            "struct VecKernels {\n"
            "  void (*axpy)(int n, float a, const float* x, float* y);\n"
            "};\n");
  WriteFile(root_ / "src" / "base" / "vec_kernels_impl.h",
            "#include \"base/vec_kernels.h\"\n"
            "inline VecKernels MakeVecKernels() {\n"
            "  VecKernels k;\n"
            "  k.axpy = nullptr;\n"
            "  return k;\n"
            "}\n");
  for (const char* tier : {"scalar", "sse", "avx2", "avx512", "neon"}) {
    WriteFile(root_ / "src" / "base" /
                  ("vec_kernels_tier_" + std::string(tier) + ".cc"),
              "#include \"base/vec_kernels_impl.h\"\n");
  }
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, ForeignIntrinsicInTierTuFails) {
  WriteCompleteKernelTable();
  WriteFile(root_ / "src" / "base" / "vec_kernels_tier_sse.cc",
            "#include \"base/vec_kernels.h\"\n"
            "static VecKernels Make() {\n"
            "  VecKernels k;\n"
            "  k.axpy = nullptr;\n"
            "  k.dot = nullptr;\n"
            "  __m256 v = _mm256_setzero_ps();\n"
            "  (void)v;\n"
            "  return k;\n"
            "}\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[tier-isolation]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("vec_kernels_tier_sse.cc:6"), std::string::npos)
      << r.output;
}

TEST_F(MgAnalyzeTest, CrossTierBackendReferenceFails) {
  WriteCompleteKernelTable();
  WriteFile(root_ / "src" / "base" / "vec_kernels_tier_scalar.cc",
            "#include \"base/vec_kernels.h\"\n"
            "struct Avx2Backend;\n"
            "static VecKernels Make() {\n"
            "  VecKernels k;\n"
            "  k.axpy = nullptr;\n"
            "  k.dot = nullptr;\n"
            "  return k;\n"
            "}\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[tier-isolation]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("Avx2Backend"), std::string::npos) << r.output;
}

// ---------------------------------------------------------------------------
// New determinism rules.
// ---------------------------------------------------------------------------

TEST_F(MgAnalyzeTest, FlagsUnorderedIterationFeedingFpAccumulation) {
  WriteFile(root_ / "src" / "core" / "bad.cc",
            "#include <unordered_map>\n"
            "// mg_analyze:allow(nondeterminism)\n"
            "std::unordered_map<int, float> g_table;\n"
            "float Sum() {\n"
            "  float s = 0.0f;\n"
            "  // mg_analyze:allow(nondeterminism)\n"
            "  for (const auto& kv : g_table) {\n"
            "    s += kv.second;\n"
            "  }\n"
            "  return s;\n"
            "}\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // The container-use allow covers nondeterminism but NOT the accumulation
  // rule — hash-order FP reduction needs its own (and should be rewritten).
  EXPECT_NE(r.output.find("bad.cc:7: [unordered-fp-accum]"), std::string::npos)
      << r.output;
}

TEST_F(MgAnalyzeTest, LookupOnlyUnorderedLoopWithoutAccumulationPasses) {
  WriteFile(root_ / "src" / "core" / "fine.cc",
            "#include <unordered_map>\n"
            "// mg_analyze:allow(nondeterminism)\n"
            "std::unordered_map<int, float> g_table;\n"
            "int Count() {\n"
            "  int n = 0;\n"
            "  // order-insensitive count -- mg_analyze:allow(nondeterminism)\n"
            "  for (const auto& kv : g_table) {\n"
            "    if (kv.second > 0.0f) ++n;\n"
            "  }\n"
            "  return n;\n"
            "}\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, FlagsAtomicFloat) {
  WriteFile(root_ / "src" / "core" / "bad.cc",
            "#include <atomic>\n"
            "std::atomic<float> g_sum{0.0f};\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("bad.cc:2: [atomic-fp]"), std::string::npos)
      << r.output;
}

TEST_F(MgAnalyzeTest, AtomicIntegerPasses) {
  WriteFile(root_ / "src" / "core" / "fine.cc",
            "#include <atomic>\n"
            "#include <cstdint>\n"
            "std::atomic<int64_t> g_count{0};\n"
            "std::atomic<uint64_t> g_bits{0};\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// ---------------------------------------------------------------------------
// Doc-knob drift.
// ---------------------------------------------------------------------------

TEST_F(MgAnalyzeTest, FlagsDocumentedKnobParsedNowhere) {
  WriteFile(root_ / "docs" / "KNOBS.md",
            "| Knob | Meaning |\n"
            "| --- | --- |\n"
            "| `MOCOGRAD_GHOST_KNOB=1` | a knob nothing parses |\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[doc-knob-drift]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("MOCOGRAD_GHOST_KNOB"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("KNOBS.md:3"), std::string::npos) << r.output;
}

TEST_F(MgAnalyzeTest, ParsedKnobInDocsTablePasses) {
  WriteFile(root_ / "src" / "base" / "knob.cc",
            "#include \"base/env.h\"\n"
            "int K() { return mocograd::GetEnvInt(\"MOCOGRAD_DOCUMENTED_KNOB"
            "\", 0, 0, 1); }\n");
  WriteFile(root_ / "docs" / "KNOBS.md",
            "| Knob | Meaning |\n"
            "| --- | --- |\n"
            "| `MOCOGRAD_DOCUMENTED_KNOB=1` | parsed in base/knob.cc |\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, CMakeOptionInDocsTablePasses) {
  WriteFile(root_ / "CMakeLists.txt",
            "option(MOCOGRAD_BUILD_EXTRAS \"build the extras\" OFF)\n");
  WriteFile(root_ / "docs" / "BUILD.md",
            "| Option | Meaning |\n"
            "| --- | --- |\n"
            "| `MOCOGRAD_BUILD_EXTRAS=ON` | a CMake option, not an env "
            "knob |\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgAnalyzeTest, KnobInDocsProseIsNotChecked) {
  // Only table rows are cross-checked: prose legitimately discusses
  // hypothetical or historical knobs.
  WriteFile(root_ / "docs" / "NOTES.md",
            "Long ago MOCOGRAD_ANCIENT_KNOB controlled this; it no longer "
            "exists.\n");
  const AnalyzeResult r = RunAnalyze(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
