// Behavior tests for tools/mg_lint.cc: each forbidden pattern is planted in
// a fixture tree and the real binary (path injected via MG_LINT_BIN) must
// exit non-zero naming the right rule; clean trees and mg_lint:allow()
// annotations must pass. The `lint` ctest runs the same binary over the
// actual repository.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace fs = std::filesystem;

namespace {

struct LintResult {
  int exit_code = -1;
  std::string output;
};

LintResult RunLint(const fs::path& root) {
  const std::string cmd =
      std::string(MG_LINT_BIN) + " " + root.string() + " 2>&1";
  LintResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to spawn: " << cmd;
  if (pipe == nullptr) return result;
  char buf[512];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

void WriteFile(const fs::path& p, const std::string& content) {
  fs::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary);
  ASSERT_TRUE(out.good()) << p;
  out << content;
}

// A fresh fixture root per test; README.md documents the one sanctioned
// knob fixtures may reference.
class MgLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) / "mg_lint_fixture" /
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(root_);
    WriteFile(root_ / "README.md",
              "Runtime knobs:\n- `MOCOGRAD_DOCUMENTED_KNOB=n` does a thing\n");
    WriteFile(root_ / "src" / "base" / "ok.cc",
              "namespace mocograd {\nint Fine() { return 1; }\n}\n");
  }

  fs::path root_;
};

TEST_F(MgLintTest, CleanTreePasses) {
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("mg_lint: OK"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, FlagsRand) {
  WriteFile(root_ / "src" / "core" / "bad.cc",
            "int Noise() { return rand(); }\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[nondeterminism]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("bad.cc:1"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, FlagsTimeAndClock) {
  WriteFile(root_ / "src" / "tensor" / "bad.cc",
            "long Now() { return time(nullptr); }\n"
            "long Ticks() { return clock(); }\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("bad.cc:1: [nondeterminism]"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("bad.cc:2: [nondeterminism]"), std::string::npos)
      << r.output;
}

TEST_F(MgLintTest, RuntimeDoesNotTripTimeRule) {
  WriteFile(root_ / "src" / "base" / "fine.cc",
            "int runtime(int x) { return x; }\n"
            "int Call() { return runtime(3); }\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgLintTest, FlagsUnorderedContainerUse) {
  WriteFile(root_ / "src" / "core" / "bad.cc",
            "#include <unordered_map>\n"
            "std::unordered_map<int, int> g_table;\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // The use site (line 2) is flagged; the #include line is exempt.
  EXPECT_NE(r.output.find("bad.cc:2: [nondeterminism]"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("bad.cc:1:"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, FlagsStdReduce) {
  WriteFile(root_ / "src" / "core" / "bad.cc",
            "float Sum(const float* p, int n) {\n"
            "  return std::reduce(p, p + n);\n"
            "}\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[nondeterminism]"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, FlagsOpenMpPragma) {
  WriteFile(root_ / "src" / "tensor" / "bad.cc",
            "#pragma omp parallel for\n"
            "void K() {}\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[nondeterminism]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("omp"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, FlagsHotPathAllocation) {
  WriteFile(root_ / "src" / "tensor" / "bad.cc",
            "#include <vector>\n"
            "// MG_HOT_PATH\n"
            "void Kernel(std::vector<float>& v) { v.push_back(1.0f); }\n"
            "// MG_HOT_PATH_END\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[hot-path-alloc]"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, HotPathEndClosesRegion) {
  WriteFile(root_ / "src" / "tensor" / "fine.cc",
            "#include <vector>\n"
            "// MG_HOT_PATH\n"
            "void Kernel(const float* x) { (void)x; }\n"
            "// MG_HOT_PATH_END\n"
            "void Setup(std::vector<float>& v) { v.push_back(1.0f); }\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgLintTest, FlagsRawNewInHotPath) {
  WriteFile(root_ / "src" / "tensor" / "bad.cc",
            "// MG_HOT_PATH\n"
            "float* Kernel() { return new float[64]; }\n"
            "// MG_HOT_PATH_END\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[hot-path-alloc]"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, FlagsAllocInServeHotPath) {
  // The serving request path (src/serve) carries the same hot-path
  // contract as the kernels: inside its MG_HOT_PATH region all scratch
  // comes from the arena, never the allocator.
  WriteFile(root_ / "src" / "serve" / "bad.cc",
            "#include <vector>\n"
            "// MG_HOT_PATH\n"
            "void Forward(const float* in, int rows) {\n"
            "  std::vector<float> activations(rows);\n"
            "  (void)in;\n"
            "}\n"
            "// MG_HOT_PATH_END\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[hot-path-alloc]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("serve/bad.cc"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, FlagsLayeringBackEdge) {
  WriteFile(root_ / "src" / "base" / "bad.cc",
            "#include \"tensor/tensor.h\"\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[layering]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("back-edge"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, FlagsSiblingLayerInclude) {
  WriteFile(root_ / "src" / "nn" / "bad.cc",
            "#include \"optim/optimizer.h\"\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[layering]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("sibling"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, DownwardIncludePasses) {
  WriteFile(root_ / "src" / "mtl" / "fine.cc",
            "#include \"core/aggregator.h\"\n"
            "#include \"base/check.h\"\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgLintTest, FlagsBareAssert) {
  WriteFile(root_ / "src" / "base" / "bad.cc",
            "#include <cassert>\n"
            "void F(int x) { assert(x > 0); }\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[bare-assert]"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, StaticAssertPasses) {
  WriteFile(root_ / "src" / "base" / "fine.cc",
            "static_assert(sizeof(int) == 4, \"ILP32/LP64 only\");\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgLintTest, FlagsUndocumentedEnvKnob) {
  WriteFile(root_ / "src" / "base" / "bad.cc",
            "#include \"base/env.h\"\n"
            "int K() { return mocograd::GetEnvInt(\"MOCOGRAD_SECRET_KNOB\", "
            "0, 0, 1); }\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[env-registry]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("MOCOGRAD_SECRET_KNOB"), std::string::npos)
      << r.output;
}

TEST_F(MgLintTest, DocumentedEnvKnobPasses) {
  WriteFile(root_ / "src" / "base" / "fine.cc",
            "#include \"base/env.h\"\n"
            "int K() { return mocograd::GetEnvInt(\"MOCOGRAD_DOCUMENTED_KNOB"
            "\", 0, 0, 1); }\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgLintTest, FlagsUndocumentedIsaAndPrecisionKnobs) {
  // The PR-9 knobs ride the same registry rule: parsing
  // MOCOGRAD_SIMD_ISA / MOCOGRAD_SERVE_PRECISION without README rows
  // must fail, naming each knob.
  WriteFile(root_ / "src" / "base" / "bad.cc",
            "#include \"base/env.h\"\n"
            "std::string T() {\n"
            "  return mocograd::GetEnvString(\"MOCOGRAD_SIMD_ISA\", "
            "\"auto\");\n"
            "}\n");
  WriteFile(root_ / "src" / "serve" / "bad2.cc",
            "#include \"base/env.h\"\n"
            "std::string P() {\n"
            "  return mocograd::GetEnvString(\"MOCOGRAD_SERVE_PRECISION\", "
            "\"fp32\");\n"
            "}\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[env-registry]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("MOCOGRAD_SIMD_ISA"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("MOCOGRAD_SERVE_PRECISION"), std::string::npos)
      << r.output;
}

TEST_F(MgLintTest, DocumentedIsaAndPrecisionKnobsPass) {
  WriteFile(root_ / "README.md",
            "Runtime knobs:\n"
            "- `MOCOGRAD_SIMD_ISA=auto|avx512|avx2|sse|scalar` caps the "
            "dispatch tier\n"
            "- `MOCOGRAD_SERVE_PRECISION=fp32|bf16` selects serving weight "
            "storage\n");
  WriteFile(root_ / "src" / "base" / "fine.cc",
            "#include \"base/env.h\"\n"
            "std::string T() {\n"
            "  return mocograd::GetEnvString(\"MOCOGRAD_SIMD_ISA\", "
            "\"auto\");\n"
            "}\n");
  WriteFile(root_ / "src" / "serve" / "fine2.cc",
            "#include \"base/env.h\"\n"
            "std::string P() {\n"
            "  return mocograd::GetEnvString(\"MOCOGRAD_SERVE_PRECISION\", "
            "\"fp32\");\n"
            "}\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgLintTest, AllowAnnotationOnLineSuppresses) {
  WriteFile(root_ / "src" / "core" / "fine.cc",
            "int Noise() { return rand(); }  // mg_lint:allow(nondeterminism)"
            " -- fixture\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgLintTest, AllowAnnotationOnPrecedingLineSuppresses) {
  WriteFile(root_ / "src" / "core" / "fine.cc",
            "// lookup-only table, never iterated:\n"
            "// mg_lint:allow(nondeterminism)\n"
            "std::unordered_map<int, int> g_table;\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(MgLintTest, AllowForWrongRuleDoesNotSuppress) {
  WriteFile(root_ / "src" / "core" / "bad.cc",
            "int Noise() { return rand(); }  // mg_lint:allow(layering)\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[nondeterminism]"), std::string::npos) << r.output;
}

TEST_F(MgLintTest, CommentsAndStringsDoNotTrip) {
  WriteFile(root_ / "src" / "base" / "fine.cc",
            "// rand() and time() are banned; std::unordered_map too.\n"
            "/* #pragma omp would be flagged in code */\n"
            "const char* kDoc = \"never call rand() or malloc()\";\n");
  const LintResult r = RunLint(root_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
