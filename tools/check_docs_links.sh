#!/usr/bin/env sh
# Validates cross-references in the repository's markdown documentation:
#
#   1. every relative markdown link target `[text](path)` in README.md and
#      docs/*.md resolves to an existing file (external http(s) links and
#      pure #anchors are skipped);
#   2. every file or directory path named in backticks that looks like a
#      repo path (src/..., docs/..., tests/..., tools/..., bench/...,
#      examples/..., or a top-level *.md) actually exists.
#
# Exits non-zero listing every broken reference. Wired into the build as
# the `check_docs` target (cmake --build build --target check_docs).
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
status=0

docs_files="$repo_root/README.md"
for f in "$repo_root"/docs/*.md; do
  [ -e "$f" ] && docs_files="$docs_files $f"
done

for f in $docs_files; do
  rel_f=${f#"$repo_root/"}
  dir=$(dirname "$f")

  # 1. Relative markdown link targets.
  targets=$(grep -o '](\([^)#][^)]*\))' "$f" 2>/dev/null \
    | sed 's/^](//; s/)$//' \
    | grep -v '^[a-z+]*://' || true)
  for t in $targets; do
    if [ ! -e "$dir/$t" ] && [ ! -e "$repo_root/$t" ]; then
      echo "BROKEN LINK  $rel_f -> $t"
      status=1
    fi
  done

  # 2. Backticked repo paths.
  paths=$(grep -o '`[A-Za-z0-9_./-]*`' "$f" 2>/dev/null \
    | sed 's/^`//; s/`$//' \
    | grep -E '^(src|docs|tests|tools|bench|examples)/[A-Za-z0-9_./-]+$|^[A-Za-z0-9_-]+\.md$' \
    | grep -v '\.\.' | sort -u || true)
  for p in $paths; do
    # Paths under build output or with shell globs are not checkable.
    case $p in
      *\**) continue ;;
    esac
    if [ ! -e "$repo_root/$p" ]; then
      echo "BROKEN PATH  $rel_f -> $p"
      status=1
    fi
  done
done

if [ $status -eq 0 ]; then
  echo "OK: all documentation cross-references resolve"
fi
exit $status
