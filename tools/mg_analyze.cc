// mg_analyze — call-graph-aware repo invariant analyzer (docs/CORRECTNESS.md).
//
// Successor to mg_lint: the same textual contracts, now checked on a symbol
// index of the whole src/ tree instead of single files in isolation. The
// analyzer lexes every source file (comments and string literals stripped
// with line structure preserved), indexes function definitions with an
// approximate brace-matching parser, links call sites by name into an
// intra-project call graph, and runs rule engines over the result:
//
//   nondeterminism     no nondeterminism sources in src/: rand()/srand()/
//                      random()/time()/clock()/std::random_device (use
//                      base/rng.h), std::unordered_* (iteration order is
//                      implementation-defined — use only with an allow
//                      annotation proving lookup-only access), std::reduce,
//                      #pragma omp, fast-math-style pragmas.
//   unordered-fp-accum range-for over a std::unordered_* variable whose loop
//                      body accumulates floating point (+=, AddInPlace):
//                      hash-order-dependent FP reduction, the exact failure
//                      the determinism contract forbids.
//   atomic-fp          std::atomic<float|double> — concurrent FP
//                      accumulation commits in scheduling order; use the
//                      ordered block reductions (tensor/ops.cc) or
//                      integer-bit atomics (obs/metrics.cc).
//   hot-path-alloc     no heap allocation or container growth inside
//                      // MG_HOT_PATH ... // MG_HOT_PATH_END regions — and,
//                      transitively, in any function reachable from a hot
//                      region through the call graph. Cold excursions that
//                      are sanctioned by design (arena growth, ParallelFor
//                      fan-out setup) are bracketed // MG_COLD_PATH ...
//                      // MG_COLD_PATH_END and excluded from both the token
//                      scan and the traversal.
//   tier-table         every function-pointer field of a kernel table
//                      struct (a `struct *Kernels` in a `*_kernels.h`
//                      header) must be assigned in all five ISA tier TUs
//                      (`<stem>_tier_{scalar,sse,avx2,avx512,neon}.cc`,
//                      directly or via a transitively included impl
//                      header), and all five TUs must exist.
//   tier-isolation     a tier TU must not use another tier's intrinsics or
//                      reference another tier's simd backend tag: the
//                      per-TU ISA-flag scheme (docs/SIMD.md) only keeps
//                      illegal instructions out of low-tier binaries if
//                      high-tier code never leaks across TU boundaries.
//   layering           includes respect base → obs → tensor → autograd →
//                      {nn,optim,solvers,data,eval} → core → mtl →
//                      {harness,serve}; no back-edges, no sibling coupling.
//   bare-assert        no bare assert() in src/ — use MG_CHECK / MG_DCHECK.
//   env-registry       every MOCOGRAD_* env knob parsed in src/ or bench/
//                      must be documented in README.md's knob table.
//   doc-knob-drift     every MOCOGRAD_* name in a docs/*.md table row must
//                      be parsed somewhere in src/ or bench/, or be a build
//                      option defined in a CMakeLists.txt — docs must not
//                      describe knobs the code no longer reads.
//
// Call-graph approximation (known limits, see docs/CORRECTNESS.md): calls
// link by bare name; a call resolves to same-file definitions first, then
// to the global definition when it is unambiguous (all candidates in one
// file), and is dropped when the name is defined in several files
// (virtual/overload fan-out would drown the report in false positives).
// Calls through function pointers, macros, and templates instantiated from
// elsewhere are invisible. The rule errs toward silence, never toward
// noise; the dynamic alloc-counting tests remain the backstop.
//
// Suppression grammar: `// mg_analyze:allow(<rule>)` on the offending line
// or on a comment-only line directly above it. An allow is a reviewed claim
// that the invariant holds for a reason the analysis cannot see — pair it
// with a comment saying why.
//
// Usage: mg_analyze <repo_root>
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Violation& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

struct KnobRef {
  std::string name;
  std::string file;
  int line = 0;
};

// ---------------------------------------------------------------------------
// Lexing: strip comments/strings, mark regions, split tokens.
// ---------------------------------------------------------------------------

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

// Blanks comments, string-literal bodies, and char-literal bodies out of
// each line (preserving length and line structure) so token rules never
// fire on prose. Comment text is preserved separately for the annotation
// and region-marker scans.
void StripCommentsAndStrings(const std::vector<std::string>& raw,
                             std::vector<std::string>* code,
                             std::vector<std::string>* comments) {
  enum class State { kCode, kString, kChar, kBlockComment };
  State state = State::kCode;
  code->assign(raw.size(), "");
  comments->assign(raw.size(), "");
  for (size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    std::string& out = (*code)[li];
    std::string& cmt = (*comments)[li];
    out.assign(line.size(), ' ');
    for (size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            cmt += line.substr(i + 2);
            i = line.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kString;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kChar;
          } else {
            out[i] = c;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kCode;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          } else {
            cmt.push_back(c);
          }
          break;
      }
    }
    // Unterminated line states: strings don't span lines in this codebase;
    // reset to be safe. Block comments do span lines.
    if (state == State::kString || state == State::kChar) state = State::kCode;
  }
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

// Finds `token` in `code` requiring a non-identifier character before it
// (so `time(` never fires on `runtime(`, and `static_assert(` never fires
// the bare-assert rule). Returns npos if absent.
size_t FindToken(const std::string& code, const std::string& token) {
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    if (pos == 0 || !IsIdentChar(code[pos - 1])) return pos;
    pos += 1;
  }
  return std::string::npos;
}

// Both-side identifier boundary (field names, `new`, backend tags).
bool HasWholeToken(const std::string& code, const std::string& token,
                   size_t* at = nullptr) {
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const bool right_ok = pos + token.size() >= code.size() ||
                          !IsIdentChar(code[pos + token.size()]);
    if (left_ok && right_ok) {
      if (at != nullptr) *at = pos;
      return true;
    }
    pos += token.size();
  }
  return false;
}

// One loaded source file plus everything the line-level rules derived.
struct SourceFile {
  std::string rel;        // path relative to repo root
  std::string under_src;  // path relative to src/ ("" when not under src)
  std::string dir;        // first path component under src/
  std::string stem;       // filename without extension
  std::vector<std::string> raw, code, comments;
  std::vector<bool> hot;      // inside // MG_HOT_PATH ... // MG_HOT_PATH_END
  std::vector<bool> cold;     // inside // MG_COLD_PATH ... // MG_COLD_PATH_END
  std::vector<bool> preproc;  // preprocessor line (incl. continuations)
  std::vector<std::string> includes;  // quoted project include paths
};

void MarkRegionsAndPreproc(SourceFile* f) {
  bool hot = false, cold = false, continuation = false;
  f->hot.assign(f->raw.size(), false);
  f->cold.assign(f->raw.size(), false);
  f->preproc.assign(f->raw.size(), false);
  for (size_t li = 0; li < f->raw.size(); ++li) {
    const std::string& cmt = f->comments[li];
    if (cmt.find("MG_HOT_PATH_END") != std::string::npos) {
      hot = false;
    } else if (cmt.find("MG_HOT_PATH") != std::string::npos) {
      hot = true;
    }
    if (cmt.find("MG_COLD_PATH_END") != std::string::npos) {
      cold = false;
    } else if (cmt.find("MG_COLD_PATH") != std::string::npos) {
      cold = true;
    }
    f->hot[li] = hot;
    f->cold[li] = cold;

    const std::string& raw = f->raw[li];
    const size_t first = raw.find_first_not_of(" \t");
    const bool directive = first != std::string::npos && raw[first] == '#';
    f->preproc[li] = continuation || directive;
    continuation = f->preproc[li] && !raw.empty() && raw.back() == '\\';

    if (directive) {
      const size_t q0 = raw.find('"');
      const size_t q1 = q0 == std::string::npos ? q0 : raw.find('"', q0 + 1);
      if (raw.find("#include", first) != std::string::npos &&
          q1 != std::string::npos) {
        f->includes.push_back(raw.substr(q0 + 1, q1 - q0 - 1));
      }
    }
  }
}

// True when line li (or a comment-only predecessor line) carries
// mg_analyze:allow(rule).
bool IsAllowed(const SourceFile& f, size_t li, const std::string& rule) {
  const std::string needle = "mg_analyze:allow(" + rule + ")";
  if (f.comments[li].find(needle) != std::string::npos) return true;
  for (size_t i = li; i > 0;) {
    --i;
    const bool comment_only =
        f.code[i].find_first_not_of(" \t") == std::string::npos &&
        !f.comments[i].empty();
    if (!comment_only) break;
    if (f.comments[i].find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Symbol index: approximate function definitions + call sites.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;  // 1-based
};

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",   "switch",        "return",
      "sizeof", "catch",    "throw",   "do",            "else",
      "new",    "delete",   "case",    "goto",          "static_assert",
      "alignof", "alignas", "decltype", "defined",      "assert",
      "void",   "operator", "not",     "and",           "or",
      "typeid", "noexcept", "co_await", "co_return",    "co_yield",
  };
  return kw;
}

struct CallSite {
  std::string name;
  int line = 0;
};

struct Function {
  std::string name;
  int file = -1;    // index into the file table
  int begin = 0;    // 1-based body lines [begin, end]
  int end = 0;
  std::vector<CallSite> calls;
};

// Tokenizes the code view of `f` (skipping preprocessor lines) and walks a
// brace-depth state machine. A `{` opens a function body when the previous
// significant token closes a parameter list (`)`, a trailing qualifier, or
// a ctor-init-list tail) and the statement's first `ident(` named a
// plausible function. Everything else (`namespace`, classes, enums,
// brace-init) opens a plain scope. Lambda and nested braces inside a body
// attribute their call sites to the enclosing function — exactly what
// reachability wants.
void IndexFile(const SourceFile& f, int file_idx,
               std::vector<Function>* functions) {
  std::vector<Token> toks;
  for (size_t li = 0; li < f.code.size(); ++li) {
    if (f.preproc[li]) continue;
    const std::string& line = f.code[li];
    for (size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (IsIdentStart(c)) {
        size_t j = i + 1;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        toks.push_back({line.substr(i, j - i), static_cast<int>(li) + 1});
        i = j;
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        toks.push_back({std::string(1, c), static_cast<int>(li) + 1});
        ++i;
      } else {
        ++i;
      }
    }
  }

  static const std::set<std::string> body_openers = {
      ")", "const", "noexcept", "override", "final", "try"};

  int depth = 0;
  bool in_function = false;
  int entry_depth = 0;
  Function current;
  std::string stmt_call;  // first `ident(` since the last statement boundary
  std::string last_sig;

  for (size_t t = 0; t < toks.size(); ++t) {
    const std::string& tk = toks[t].text;
    const std::string next =
        t + 1 < toks.size() ? toks[t + 1].text : std::string();

    if (in_function) {
      if (tk == "{") {
        ++depth;
      } else if (tk == "}") {
        --depth;
        if (depth == entry_depth) {
          current.end = toks[t].line;
          functions->push_back(current);
          in_function = false;
          stmt_call.clear();
        }
      } else if (IsIdentStart(tk[0]) && next == "(" &&
                 CallKeywords().count(tk) == 0) {
        current.calls.push_back({tk, toks[t].line});
      }
      last_sig = tk;
      continue;
    }

    if (tk == "{") {
      if (body_openers.count(last_sig) != 0 && !stmt_call.empty() &&
          CallKeywords().count(stmt_call) == 0) {
        in_function = true;
        entry_depth = depth;
        current = Function();
        current.name = stmt_call;
        current.file = file_idx;
        current.begin = toks[t].line;
      }
      ++depth;
      stmt_call.clear();
    } else if (tk == "}") {
      --depth;
      stmt_call.clear();
    } else if (tk == ";") {
      stmt_call.clear();
    } else if (stmt_call.empty() && IsIdentStart(tk[0]) && next == "(") {
      stmt_call = tk;
    }
    last_sig = tk;
  }
}

// ---------------------------------------------------------------------------
// Token-rule tables (ported from mg_lint).
// ---------------------------------------------------------------------------

struct TokenRule {
  std::string token;
  std::string rule;
  std::string message;
};

const std::vector<TokenRule>& NondeterminismTokens() {
  static const std::vector<TokenRule> rules = {
      {"rand(", "nondeterminism", "rand() — use base/rng.h (seeded, stable)"},
      {"srand(", "nondeterminism", "srand() — use base/rng.h"},
      {"random(", "nondeterminism", "random() — use base/rng.h"},
      {"rand_r(", "nondeterminism", "rand_r() — use base/rng.h"},
      {"drand48(", "nondeterminism", "drand48() — use base/rng.h"},
      {"random_device", "nondeterminism",
       "std::random_device — nondeterministic seed; use base/rng.h"},
      {"time(", "nondeterminism",
       "time() — wall-clock in kernel code; obs/ owns timing"},
      {"clock(", "nondeterminism",
       "clock() — wall-clock in kernel code; obs/ owns timing"},
      {"unordered_map", "nondeterminism",
       "std::unordered_map — iteration order is implementation-defined; "
       "annotate lookup-only uses with mg_analyze:allow(nondeterminism)"},
      {"unordered_set", "nondeterminism",
       "std::unordered_set — iteration order is implementation-defined; "
       "annotate lookup-only uses with mg_analyze:allow(nondeterminism)"},
      {"unordered_multimap", "nondeterminism",
       "std::unordered_multimap — iteration order is implementation-defined"},
      {"std::reduce", "nondeterminism",
       "std::reduce — unspecified reduction tree; use vec:: kernels"},
  };
  return rules;
}

const std::vector<TokenRule>& HotPathTokens() {
  static const std::vector<TokenRule> rules = {
      {"malloc(", "hot-path-alloc", "malloc"},
      {"calloc(", "hot-path-alloc", "calloc"},
      {"realloc(", "hot-path-alloc", "realloc"},
      {"aligned_alloc(", "hot-path-alloc", "aligned_alloc"},
      {"free(", "hot-path-alloc", "free"},
      {"push_back(", "hot-path-alloc", "container growth (push_back)"},
      {"emplace_back(", "hot-path-alloc", "container growth (emplace_back)"},
      {"emplace(", "hot-path-alloc", "container growth (emplace)"},
      {"resize(", "hot-path-alloc", "container growth (resize)"},
      {"reserve(", "hot-path-alloc", "container growth (reserve)"},
      {"make_unique", "hot-path-alloc", "make_unique heap allocation"},
      {"make_shared", "hot-path-alloc", "make_shared heap allocation"},
  };
  return rules;
}

// `new` needs a both-sides boundary: `news`, `renew`, `new_x` must not fire.
bool HasNewToken(const std::string& code) {
  return HasWholeToken(code, "new");
}

// An allocation site found inside a function body for the transitive rule.
struct AllocSite {
  int line = 0;
  std::string what;
};

std::vector<AllocSite> AllocSitesIn(const SourceFile& f, const Function& fn) {
  std::vector<AllocSite> sites;
  for (int li = fn.begin; li <= fn.end && li <= static_cast<int>(f.code.size());
       ++li) {
    const size_t idx = static_cast<size_t>(li) - 1;
    if (f.cold[idx] || f.preproc[idx]) continue;
    if (IsAllowed(f, idx, "hot-path-alloc")) continue;
    if (HasNewToken(f.code[idx])) {
      sites.push_back({li, "raw new"});
      continue;
    }
    for (const TokenRule& tr : HotPathTokens()) {
      if (FindToken(f.code[idx], tr.token) != std::string::npos) {
        sites.push_back({li, tr.message});
        break;
      }
    }
  }
  return sites;
}

// ---------------------------------------------------------------------------
// Layering.
// ---------------------------------------------------------------------------

// Module ranks for the layering rule. A file under src/<dir>/ may include
// "e/..." only when rank(e) <= rank(dir), and equal ranks only within the
// same directory (nn, optim, solvers, data, eval are siblings that must not
// couple to each other).
const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int> ranks = {
      {"base", 0},    {"obs", 1},  {"tensor", 2}, {"autograd", 3},
      {"nn", 4},      {"optim", 4}, {"solvers", 4}, {"data", 4},
      {"eval", 4},    {"core", 5}, {"mtl", 6},    {"harness", 7},
      {"serve", 7},
  };
  return ranks;
}

// ---------------------------------------------------------------------------
// Env knobs.
// ---------------------------------------------------------------------------

void ExtractKnobs(const std::string& raw_line, const std::string& rel_path,
                  int line_no, std::vector<KnobRef>* knobs) {
  if (raw_line.find("GetEnv") == std::string::npos &&
      raw_line.find("getenv") == std::string::npos) {
    return;
  }
  size_t pos = 0;
  while ((pos = raw_line.find("\"MOCOGRAD_", pos)) != std::string::npos) {
    size_t end = pos + 1;
    while (end < raw_line.size() &&
           (std::isupper(static_cast<unsigned char>(raw_line[end])) ||
            std::isdigit(static_cast<unsigned char>(raw_line[end])) ||
            raw_line[end] == '_')) {
      ++end;
    }
    if (end < raw_line.size() && raw_line[end] == '"') {
      knobs->push_back({raw_line.substr(pos + 1, end - pos - 1), rel_path,
                        line_no});
    }
    pos = end;
  }
}

// All MOCOGRAD_* identifiers in `text` (for docs tables and CMake options).
std::set<std::string> ExtractKnobNames(const std::string& text) {
  std::set<std::string> names;
  size_t pos = 0;
  while ((pos = text.find("MOCOGRAD_", pos)) != std::string::npos) {
    if (pos > 0 && IsIdentChar(text[pos - 1])) {
      pos += 1;
      continue;
    }
    size_t end = pos;
    while (end < text.size() &&
           (std::isupper(static_cast<unsigned char>(text[end])) ||
            std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '_')) {
      ++end;
    }
    if (end > pos + 9) names.insert(text.substr(pos, end - pos));
    pos = end;
  }
  return names;
}

// ---------------------------------------------------------------------------
// Per-file line rules (the mg_lint core, plus the new token rules).
// ---------------------------------------------------------------------------

void ScanLines(const SourceFile& f, std::vector<Violation>* violations,
               std::vector<KnobRef>* knobs) {
  const auto& ranks = LayerRanks();
  const auto self_rank = ranks.find(f.dir);

  // Same-file unordered-container variable names for unordered-fp-accum.
  std::set<std::string> unordered_vars;
  for (size_t li = 0; li < f.code.size(); ++li) {
    const std::string& cl = f.code[li];
    size_t u = cl.find("unordered_");
    if (u == std::string::npos || f.preproc[li]) continue;
    const size_t lt = cl.find('<', u);
    if (lt == std::string::npos) continue;
    int angle = 0;
    size_t i = lt;
    for (; i < cl.size(); ++i) {
      if (cl[i] == '<') ++angle;
      if (cl[i] == '>' && --angle == 0) break;
    }
    if (angle != 0) continue;  // template args span lines — give up
    // First identifier after the closing '>' is the variable name.
    for (size_t j = i + 1; j < cl.size(); ++j) {
      if (IsIdentStart(cl[j])) {
        size_t k = j + 1;
        while (k < cl.size() && IsIdentChar(cl[k])) ++k;
        unordered_vars.insert(cl.substr(j, k - j));
        break;
      }
      if (cl[j] != ' ' && cl[j] != '&' && cl[j] != '*') break;
    }
  }

  for (size_t li = 0; li < f.raw.size(); ++li) {
    const int line_no = static_cast<int>(li) + 1;
    auto emit = [&](const std::string& rule, const std::string& message) {
      if (!IsAllowed(f, li, rule)) {
        violations->push_back({f.rel, line_no, rule, message});
      }
    };
    const std::string& cl = f.code[li];

    // Pragmas (code view keeps preprocessor text).
    if (cl.find("#pragma omp") != std::string::npos) {
      emit("nondeterminism",
           "#pragma omp — threading goes through base/thread_pool.h");
    }
    if (cl.find("#pragma GCC optimize") != std::string::npos ||
        cl.find("#pragma clang fp") != std::string::npos ||
        cl.find("#pragma STDC FP_CONTRACT") != std::string::npos ||
        cl.find("fast-math") != std::string::npos) {
      emit("nondeterminism",
           "fast-math-style pragma — breaks the docs/SIMD.md determinism "
           "contract (-ffp-contract=off is global)");
    }

    // #include <unordered_map> lines are exempt: the *use* sites are what
    // carry the iteration-order risk and what the allow annotation reviews.
    const bool is_include_line = cl.find("#include") != std::string::npos;
    for (const TokenRule& tr : NondeterminismTokens()) {
      if (is_include_line) break;
      if (FindToken(cl, tr.token) != std::string::npos) {
        emit(tr.rule, tr.message);
      }
    }

    if (FindToken(cl, "assert(") != std::string::npos) {
      emit("bare-assert",
           "bare assert() — use MG_CHECK/MG_DCHECK (base/check.h)");
    }

    // std::atomic over a floating type: accumulation order follows thread
    // scheduling, which the determinism contract forbids.
    {
      std::string squeezed;
      squeezed.reserve(cl.size());
      for (char c : cl) {
        if (c != ' ' && c != '\t') squeezed.push_back(c);
      }
      if (squeezed.find("atomic<float>") != std::string::npos ||
          squeezed.find("atomic<double>") != std::string::npos) {
        emit("atomic-fp",
             "std::atomic over a floating type — scheduling-order FP "
             "accumulation; use ordered block reductions (tensor/ops.cc) or "
             "integer-bit atomics (obs/metrics.cc)");
      }
    }

    // Range-for over an unordered container feeding FP accumulation.
    if (!unordered_vars.empty() && !f.preproc[li]) {
      const size_t fo = FindToken(cl, "for");
      const size_t colon = fo == std::string::npos
                               ? std::string::npos
                               : cl.find(':', fo);
      if (colon != std::string::npos && colon + 1 < cl.size() &&
          cl[colon + 1] != ':' && (colon == 0 || cl[colon - 1] != ':')) {
        bool over_unordered = false;
        for (size_t j = colon + 1; j < cl.size();) {
          if (IsIdentStart(cl[j])) {
            size_t k = j + 1;
            while (k < cl.size() && IsIdentChar(cl[k])) ++k;
            if (unordered_vars.count(cl.substr(j, k - j)) != 0) {
              over_unordered = true;
              break;
            }
            j = k;
          } else {
            ++j;
          }
        }
        if (over_unordered) {
          // Scan the loop body (brace-matched from the for line) for FP
          // accumulation.
          int depth = 0;
          bool body_seen = false, accumulates = false;
          for (size_t bj = li; bj < f.code.size(); ++bj) {
            const std::string& bl = f.code[bj];
            if (bl.find("+=") != std::string::npos ||
                bl.find("AddInPlace(") != std::string::npos) {
              accumulates = true;
            }
            for (char c : bl) {
              if (c == '{') {
                ++depth;
                body_seen = true;
              }
              if (c == '}') --depth;
            }
            if (body_seen && depth <= 0) break;
            if (!body_seen && bj > li + 1) break;  // single-statement body
          }
          if (accumulates) {
            emit("unordered-fp-accum",
                 "range-for over an unordered container accumulates floating "
                 "point — hash-order-dependent reduction; iterate a sorted "
                 "view or an ordered container");
          }
        }
      }
    }

    // Direct hot-region allocation scan (the transitive pass handles
    // everything reachable from here).
    if (f.hot[li] && !f.cold[li]) {
      if (HasNewToken(cl)) {
        emit("hot-path-alloc",
             "raw new in a hot-path region — use a ScratchScope "
             "(base/scratch.h)");
      }
      for (const TokenRule& tr : HotPathTokens()) {
        if (FindToken(cl, tr.token) != std::string::npos) {
          emit(tr.rule, tr.message + " in a hot-path region");
        }
      }
      if (cl.find("std::vector<") != std::string::npos) {
        emit("hot-path-alloc",
             "vector construction in a hot-path region — use a ScratchScope");
      }
    }

    // Layering: #include "dir/..." edges.
    const size_t inc = cl.find("#include");
    if (inc != std::string::npos && self_rank != ranks.end()) {
      const size_t q0 = cl.find('"', inc);
      if (q0 != std::string::npos) {
        // Raw line carries the path (the code view blanked the literal).
        const size_t slash = f.raw[li].find('/', q0 + 1);
        const size_t q1 = f.raw[li].find('"', q0 + 1);
        if (slash != std::string::npos && q1 != std::string::npos &&
            slash < q1) {
          const std::string target = f.raw[li].substr(q0 + 1, slash - q0 - 1);
          const auto target_rank = ranks.find(target);
          if (target_rank != ranks.end() && target != f.dir) {
            if (target_rank->second > self_rank->second) {
              emit("layering", "back-edge include: " + f.dir + " (layer " +
                                   std::to_string(self_rank->second) +
                                   ") must not include " + target +
                                   " (layer " +
                                   std::to_string(target_rank->second) + ")");
            } else if (target_rank->second == self_rank->second) {
              emit("layering", "sibling include: " + f.dir + " and " + target +
                                   " are same-layer modules and must not "
                                   "couple");
            }
          }
        }
      }
    }

    ExtractKnobs(f.raw[li], f.rel, line_no, knobs);
  }
}

// ---------------------------------------------------------------------------
// Transitive hot-path allocation analysis.
// ---------------------------------------------------------------------------

struct CallGraph {
  const std::vector<SourceFile>* files = nullptr;
  std::vector<Function> functions;
  std::map<std::string, std::vector<int>> by_name;

  // Same-file candidates first; otherwise the global set when every
  // definition lives in one file; empty (drop the edge) when ambiguous.
  std::vector<int> Resolve(const std::string& name, int from_file) const {
    const auto it = by_name.find(name);
    if (it == by_name.end()) return {};
    std::vector<int> same_file;
    std::set<int> files_seen;
    for (int id : it->second) {
      if (functions[id].file == from_file) same_file.push_back(id);
      files_seen.insert(functions[id].file);
    }
    if (!same_file.empty()) return same_file;
    if (files_seen.size() == 1) return it->second;
    return {};
  }
};

void RunTransitiveHotPath(const std::vector<SourceFile>& files,
                          const CallGraph& graph,
                          std::vector<Violation>* violations) {
  struct WorkItem {
    int func;
    std::string origin;  // "file:line" of the hot call site
    std::string chain;   // "A -> B -> C"
  };
  std::vector<WorkItem> queue;
  std::set<int> visited;

  // Roots: every call made on a hot (and not cold) line.
  for (const Function& fn : graph.functions) {
    const SourceFile& f = files[fn.file];
    for (const CallSite& c : fn.calls) {
      const size_t idx = static_cast<size_t>(c.line) - 1;
      if (idx >= f.hot.size() || !f.hot[idx] || f.cold[idx]) continue;
      for (int target : graph.Resolve(c.name, fn.file)) {
        if (!visited.insert(target).second) continue;
        queue.push_back({target,
                         f.rel + ":" + std::to_string(c.line),
                         fn.name + " -> " + c.name});
      }
    }
  }

  while (!queue.empty()) {
    const WorkItem item = queue.back();
    queue.pop_back();
    const Function& fn = graph.functions[item.func];
    const SourceFile& f = files[fn.file];

    for (const AllocSite& site : AllocSitesIn(f, fn)) {
      const size_t idx = static_cast<size_t>(site.line) - 1;
      if (idx < f.hot.size() && f.hot[idx]) continue;  // direct rule's job
      violations->push_back(
          {f.rel, site.line, "hot-path-alloc",
           site.what + " reachable from the MG_HOT_PATH region at " +
               item.origin + " via " + item.chain +
               " — hoist it, use scratch, or bracket a sanctioned cold "
               "excursion with MG_COLD_PATH"});
    }

    for (const CallSite& c : fn.calls) {
      const size_t idx = static_cast<size_t>(c.line) - 1;
      if (idx < f.cold.size() && f.cold[idx]) continue;
      for (int target : graph.Resolve(c.name, fn.file)) {
        if (!visited.insert(target).second) continue;
        queue.push_back({target, item.origin, item.chain + " -> " + c.name});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ISA tier rules.
// ---------------------------------------------------------------------------

const std::vector<std::string>& TierNames() {
  static const std::vector<std::string> tiers = {"scalar", "sse", "avx2",
                                                 "avx512", "neon"};
  return tiers;
}

struct KernelTable {
  int header_file = -1;
  int struct_line = 0;
  std::string stem;  // "vec_kernels" for vec_kernels.h
  std::vector<std::string> fields;
};

// Finds `struct <Name>Kernels { ... }` in a `*_kernels.h` header and
// collects its `(*field)` function-pointer member names.
std::vector<KernelTable> FindKernelTables(const std::vector<SourceFile>& files) {
  std::vector<KernelTable> tables;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& f = files[fi];
    if (f.under_src.empty() || f.rel.size() < 10 ||
        f.rel.rfind("_kernels.h") != f.rel.size() - 10) {
      continue;
    }
    for (size_t li = 0; li < f.code.size(); ++li) {
      const size_t s = f.code[li].find("struct ");
      if (s == std::string::npos) continue;
      const size_t k = f.code[li].find("Kernels", s);
      const size_t brace = f.code[li].find('{', s);
      if (k == std::string::npos || brace == std::string::npos || k > brace) {
        continue;
      }
      KernelTable table;
      table.header_file = static_cast<int>(fi);
      table.struct_line = static_cast<int>(li) + 1;
      table.stem = f.stem;
      int depth = 0;
      for (size_t bj = li; bj < f.code.size(); ++bj) {
        const std::string& bl = f.code[bj];
        size_t pos = 0;
        while ((pos = bl.find("(*", pos)) != std::string::npos) {
          size_t j = pos + 2;
          size_t k2 = j;
          while (k2 < bl.size() && IsIdentChar(bl[k2])) ++k2;
          if (k2 > j && k2 < bl.size() && bl[k2] == ')') {
            table.fields.push_back(bl.substr(j, k2 - j));
          }
          pos = k2;
        }
        for (char c : bl) {
          if (c == '{') ++depth;
          if (c == '}') --depth;
        }
        if (depth <= 0 && bj > li) break;
      }
      if (!table.fields.empty()) tables.push_back(table);
      break;  // one table struct per header
    }
  }
  return tables;
}

// The TU's own code plus every transitively included project file's code.
std::string EffectiveSource(const std::vector<SourceFile>& files,
                            const std::map<std::string, int>& by_under_src,
                            int tu) {
  std::string out;
  std::set<int> seen;
  std::vector<int> stack = {tu};
  while (!stack.empty()) {
    const int fi = stack.back();
    stack.pop_back();
    if (!seen.insert(fi).second) continue;
    const SourceFile& f = files[fi];
    for (const std::string& line : f.code) {
      out += line;
      out += '\n';
    }
    for (const std::string& inc : f.includes) {
      const auto it = by_under_src.find(inc);
      if (it != by_under_src.end()) stack.push_back(it->second);
    }
  }
  return out;
}

// True when `text` assigns the struct field: `.field =` (not `==`).
bool HasFieldAssignment(const std::string& text, const std::string& field) {
  size_t pos = 0;
  while ((pos = text.find(field, pos)) != std::string::npos) {
    const bool left_dot = [&] {
      size_t i = pos;
      while (i > 0 && (text[i - 1] == ' ' || text[i - 1] == '\t')) --i;
      return i > 0 && text[i - 1] == '.';
    }();
    const bool right_ok = pos + field.size() >= text.size() ||
                          !IsIdentChar(text[pos + field.size()]);
    if (left_dot && right_ok) {
      size_t i = pos + field.size();
      while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
      if (i < text.size() && text[i] == '=' &&
          (i + 1 >= text.size() || text[i + 1] != '=')) {
        return true;
      }
    }
    pos += field.size();
  }
  return false;
}

void RunTierRules(const std::vector<SourceFile>& files,
                  std::vector<Violation>* violations) {
  std::map<std::string, int> by_under_src;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    if (!files[fi].under_src.empty()) {
      by_under_src[files[fi].under_src] = static_cast<int>(fi);
    }
  }

  // Tier TU discovery: <stem>_tier_<tier>.cc anywhere under src/.
  // tier_tus[stem][tier] = file index.
  std::map<std::string, std::map<std::string, int>> tier_tus;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& stem = files[fi].stem;  // e.g. vec_kernels_tier_sse
    const size_t t = stem.rfind("_tier_");
    if (t == std::string::npos || files[fi].under_src.empty()) continue;
    const std::string tier = stem.substr(t + 6);
    if (std::find(TierNames().begin(), TierNames().end(), tier) ==
        TierNames().end()) {
      continue;
    }
    tier_tus[stem.substr(0, t)][tier] = static_cast<int>(fi);
  }

  for (const KernelTable& table : FindKernelTables(files)) {
    const SourceFile& header = files[table.header_file];
    const auto tus = tier_tus.find(table.stem);
    for (const std::string& tier : TierNames()) {
      const auto tu_it =
          tus == tier_tus.end() ? std::map<std::string, int>::const_iterator{}
                                : tus->second.find(tier);
      if (tus == tier_tus.end() || tu_it == tus->second.end()) {
        violations->push_back(
            {header.rel, table.struct_line, "tier-table",
             "kernel table " + header.stem + " has no " + tier +
                 " tier TU (" + table.stem + "_tier_" + tier + ".cc)"});
        continue;
      }
      const SourceFile& tu = files[tu_it->second];
      const std::string source =
          EffectiveSource(files, by_under_src, tu_it->second);
      for (const std::string& field : table.fields) {
        if (!HasFieldAssignment(source, field)) {
          violations->push_back(
              {tu.rel, 1, "tier-table",
               "kernel '" + field + "' (" + header.rel + ") has no entry in "
               "tier '" + tier + "' — every kernel must be assigned in all "
               "five tier TUs"});
        }
      }
    }
  }

  // Tier isolation: scan each tier TU's own lines (the shared impl header is
  // tier-generic by construction) for foreign intrinsics / backend tags.
  static const std::vector<std::string> kX86Sse = {"_mm_"};
  static const std::vector<std::string> kX86Avx2 = {"_mm256_"};
  static const std::vector<std::string> kX86Avx512 = {"_mm512_"};
  static const std::vector<std::string> kNeon = {"vld1", "vst1", "float32x",
                                                 "vaddq", "vmulq", "vfmaq",
                                                 "arm_neon"};
  static const std::map<std::string, std::string> kBackends = {
      {"scalar", "ScalarBackend"},
      {"sse", "SseBackend"},
      {"avx2", "Avx2Backend"},
      {"avx512", "Avx512Backend"},
      {"neon", "NeonBackend"},
  };

  for (size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& f = files[fi];
    const size_t t = f.stem.rfind("_tier_");
    if (t == std::string::npos || f.under_src.empty()) continue;
    const std::string tier = f.stem.substr(t + 6);
    if (kBackends.count(tier) == 0) continue;

    std::vector<std::pair<std::string, std::string>> forbidden;
    auto add = [&](const std::vector<std::string>& pats,
                   const std::string& why) {
      for (const std::string& p : pats) forbidden.emplace_back(p, why);
    };
    if (tier == "scalar") {
      add(kX86Sse, "x86 intrinsics in the scalar tier");
      add(kX86Avx2, "AVX2 intrinsics in the scalar tier");
      add(kX86Avx512, "AVX-512 intrinsics in the scalar tier");
      add(kNeon, "NEON intrinsics in the scalar tier");
    } else if (tier == "sse") {
      add(kX86Avx2, "AVX2 intrinsics in the sse tier");
      add(kX86Avx512, "AVX-512 intrinsics in the sse tier");
      add(kNeon, "NEON intrinsics in the sse tier");
    } else if (tier == "avx2") {
      add(kX86Avx512, "AVX-512 intrinsics in the avx2 tier");
      add(kNeon, "NEON intrinsics in the avx2 tier");
    } else if (tier == "avx512") {
      add(kNeon, "NEON intrinsics in the avx512 tier");
    } else if (tier == "neon") {
      add(kX86Sse, "x86 intrinsics in the neon tier");
      add(kX86Avx2, "x86 intrinsics in the neon tier");
      add(kX86Avx512, "x86 intrinsics in the neon tier");
    }

    for (size_t li = 0; li < f.code.size(); ++li) {
      const std::string& cl = f.code[li];
      for (const auto& [pat, why] : forbidden) {
        if (cl.find(pat) != std::string::npos &&
            !IsAllowed(f, li, "tier-isolation")) {
          violations->push_back({f.rel, static_cast<int>(li) + 1,
                                 "tier-isolation",
                                 why + " (" + pat + ") — the per-TU ISA-flag "
                                 "scheme requires tier code to stay in its "
                                 "own TU"});
          break;
        }
      }
      for (const auto& [other_tier, backend] : kBackends) {
        if (other_tier == tier) continue;
        if (HasWholeToken(cl, backend) && !IsAllowed(f, li, "tier-isolation")) {
          violations->push_back({f.rel, static_cast<int>(li) + 1,
                                 "tier-isolation",
                                 "cross-tier backend reference " + backend +
                                     " in the " + tier + " tier TU"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// File loading / main.
// ---------------------------------------------------------------------------

std::string ReadFileText(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: mg_analyze <repo_root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::fprintf(stderr, "mg_analyze: %s is not a directory\n",
                 src.string().c_str());
    return 2;
  }

  // Load and lex every src/ source file.
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && IsSourceFile(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    bool ok = false;
    const std::string content = ReadFileText(p, &ok);
    if (!ok) {
      std::fprintf(stderr, "mg_analyze: cannot read %s\n",
                   p.string().c_str());
      return 2;
    }
    SourceFile f;
    f.rel = fs::relative(p, root).generic_string();
    f.under_src = fs::relative(p, src).generic_string();
    f.dir = f.under_src.substr(0, f.under_src.find('/'));
    f.stem = p.stem().string();
    f.raw = SplitLines(content);
    StripCommentsAndStrings(f.raw, &f.code, &f.comments);
    MarkRegionsAndPreproc(&f);
    files.push_back(std::move(f));
  }

  std::vector<Violation> violations;
  std::vector<KnobRef> knobs;

  // Line rules + knob extraction.
  for (const SourceFile& f : files) ScanLines(f, &violations, &knobs);

  // Symbol index + transitive hot-path analysis.
  CallGraph graph;
  graph.files = &files;
  for (size_t fi = 0; fi < files.size(); ++fi) {
    IndexFile(files[fi], static_cast<int>(fi), &graph.functions);
  }
  for (size_t id = 0; id < graph.functions.size(); ++id) {
    graph.by_name[graph.functions[id].name].push_back(static_cast<int>(id));
  }
  RunTransitiveHotPath(files, graph, &violations);

  // ISA tier completeness + isolation.
  RunTierRules(files, &violations);

  // bench/ is scanned for env knobs only (benchmarks may use wall-clock).
  const fs::path bench = root / "bench";
  if (fs::is_directory(bench)) {
    for (const auto& entry : fs::recursive_directory_iterator(bench)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      bool ok = false;
      const std::string content = ReadFileText(entry.path(), &ok);
      if (!ok) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      const std::vector<std::string> lines = SplitLines(content);
      for (size_t li = 0; li < lines.size(); ++li) {
        ExtractKnobs(lines[li], rel, static_cast<int>(li) + 1, &knobs);
      }
    }
  }

  // env-registry: every parsed MOCOGRAD_* knob must appear in README.md.
  bool readme_ok = false;
  const std::string readme = ReadFileText(root / "README.md", &readme_ok);
  if (!readme_ok) {
    std::fprintf(stderr, "mg_analyze: cannot read %s\n",
                 (root / "README.md").string().c_str());
    return 2;
  }
  std::set<std::string> parsed;
  std::set<std::string> reported;
  for (const KnobRef& k : knobs) {
    parsed.insert(k.name);
    if (readme.find(k.name) == std::string::npos &&
        reported.insert(k.name).second) {
      violations.push_back(
          {k.file, k.line, "env-registry",
           k.name + " is parsed here but missing from README.md's "
                    "runtime-knob table"});
    }
  }

  // doc-knob-drift: MOCOGRAD_* names in docs/*.md table rows must be parsed
  // in code or be CMake build options.
  std::set<std::string> cmake_names;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file() ||
        entry.path().filename() != "CMakeLists.txt") {
      continue;
    }
    // Skip build trees (their CMakeLists copies are generated).
    const std::string rel = fs::relative(entry.path(), root).generic_string();
    if (rel.rfind("build", 0) == 0 || rel.find("/build/") != std::string::npos) {
      continue;
    }
    bool ok = false;
    const std::string content = ReadFileText(entry.path(), &ok);
    if (!ok) continue;
    for (const std::string& n : ExtractKnobNames(content)) {
      cmake_names.insert(n);
    }
  }
  const fs::path docs = root / "docs";
  if (fs::is_directory(docs)) {
    std::vector<fs::path> doc_paths;
    for (const auto& entry : fs::directory_iterator(docs)) {
      if (entry.is_regular_file() && entry.path().extension() == ".md") {
        doc_paths.push_back(entry.path());
      }
    }
    std::sort(doc_paths.begin(), doc_paths.end());
    for (const fs::path& dp : doc_paths) {
      bool ok = false;
      const std::string content = ReadFileText(dp, &ok);
      if (!ok) continue;
      const std::string rel = fs::relative(dp, root).generic_string();
      const std::vector<std::string> lines = SplitLines(content);
      for (size_t li = 0; li < lines.size(); ++li) {
        const size_t first = lines[li].find_first_not_of(" \t");
        if (first == std::string::npos || lines[li][first] != '|') continue;
        for (const std::string& name : ExtractKnobNames(lines[li])) {
          if (parsed.count(name) == 0 && cmake_names.count(name) == 0 &&
              reported.insert("doc:" + name).second) {
            violations.push_back(
                {rel, static_cast<int>(li) + 1, "doc-knob-drift",
                 name + " is documented here but parsed nowhere in src/ or "
                        "bench/ and is not a CMake option — stale doc or "
                        "dead knob"});
          }
        }
      }
    }
  }

  std::sort(violations.begin(), violations.end());
  violations.erase(std::unique(violations.begin(), violations.end(),
                               [](const Violation& a, const Violation& b) {
                                 return a.file == b.file && a.line == b.line &&
                                        a.rule == b.rule;
                               }),
                   violations.end());

  for (const Violation& v : violations) {
    std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!violations.empty()) {
    std::printf("mg_analyze: %zu violation(s) in %zu files (%zu functions "
                "indexed)\n",
                violations.size(), files.size(), graph.functions.size());
    return 1;
  }
  std::printf("mg_analyze: OK (%zu files scanned, %zu functions indexed)\n",
              files.size(), graph.functions.size());
  return 0;
}
