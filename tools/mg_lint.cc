// mg_lint — repo invariant checker (docs/CORRECTNESS.md).
//
// The repo has three contracts that types cannot express: the fork–join
// thread-safety contract (docs/ARCHITECTURE.md), the cross-ISA
// bit-determinism contract (docs/SIMD.md), and the zero-steady-state-
// allocation contract of the scratch arenas (base/scratch.h). This tool
// makes the textual shadows of those contracts machine-checked:
//
//   nondeterminism   no nondeterminism sources in src/: rand()/srand()/
//                    random()/time()/clock()/std::random_device (use
//                    base/rng.h), std::unordered_* (iteration order is
//                    implementation-defined — use it only with an allow
//                    annotation proving lookup-only access), std::reduce
//                    (unspecified reduction tree), #pragma omp (threading
//                    goes through base/thread_pool.h), and fast-math-style
//                    pragmas (the determinism contract pins -ffp-contract).
//   hot-path-alloc   no raw heap allocation or container growth inside
//                    regions bracketed by // MG_HOT_PATH ... // MG_HOT_PATH_END
//                    (GEMM, vec_ops, scratch release, surgery loops): the
//                    steady state must be allocation-free; scratch comes
//                    from base/scratch.h arenas.
//   layering         includes must respect the module layering
//                    base → obs → tensor → autograd → {nn,optim,solvers,
//                    data,eval} → core → mtl → {harness,serve}; no
//                    back-edges, no cross-includes between same-layer
//                    siblings.
//   bare-assert      no bare assert() in src/ — use MG_CHECK / MG_DCHECK
//                    (base/check.h), which report expression and file:line
//                    in every build type.
//   env-registry     every MOCOGRAD_* env knob parsed in src/ or bench/
//                    must be documented in README.md's runtime-knob table.
//
// Suppression grammar: `// mg_lint:allow(<rule>)` on the offending line, or
// on a comment-only line directly above it. An allow is a reviewed claim
// that the invariant holds for a reason the textual check cannot see — pair
// it with a comment saying why.
//
// Usage: mg_lint <repo_root>
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct KnobRef {
  std::string name;
  std::string file;
  int line = 0;
};

// Module ranks for the layering rule. A file under src/<dir>/ may include
// "e/..." only when rank(e) <= rank(dir), and equal ranks only within the
// same directory (nn, optim, solvers, data, eval are siblings that must not
// couple to each other).
const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int> ranks = {
      {"base", 0},    {"obs", 1},  {"tensor", 2}, {"autograd", 3},
      {"nn", 4},      {"optim", 4}, {"solvers", 4}, {"data", 4},
      {"eval", 4},    {"core", 5}, {"mtl", 6},    {"harness", 7},
      {"serve", 7},
  };
  return ranks;
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

// Blanks comments, string-literal bodies, and char-literal bodies out of
// each line (preserving length and line structure) so token rules never
// fire on prose. Comment text is preserved separately for the annotation
// and hot-path-marker scans.
void StripCommentsAndStrings(const std::vector<std::string>& raw,
                             std::vector<std::string>* code,
                             std::vector<std::string>* comments) {
  enum class State { kCode, kString, kChar, kBlockComment };
  State state = State::kCode;
  code->assign(raw.size(), "");
  comments->assign(raw.size(), "");
  for (size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    std::string& out = (*code)[li];
    std::string& cmt = (*comments)[li];
    out.assign(line.size(), ' ');
    for (size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            cmt += line.substr(i + 2);
            i = line.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kString;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kChar;
          } else {
            out[i] = c;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kCode;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          } else {
            cmt.push_back(c);
          }
          break;
      }
    }
    // Unterminated line states: strings don't span lines in this codebase;
    // reset to be safe. Block comments do span lines.
    if (state == State::kString || state == State::kChar) state = State::kCode;
  }
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Finds `token` in `code` requiring a non-identifier character before it
// (so `time(` never fires on `runtime(`, and `static_assert(` never fires
// the bare-assert rule). Returns npos if absent.
size_t FindToken(const std::string& code, const std::string& token) {
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    if (pos == 0 || !IsIdentChar(code[pos - 1])) return pos;
    pos += 1;
  }
  return std::string::npos;
}

struct TokenRule {
  std::string token;
  std::string rule;
  std::string message;
};

const std::vector<TokenRule>& NondeterminismTokens() {
  static const std::vector<TokenRule> rules = {
      {"rand(", "nondeterminism", "rand() — use base/rng.h (seeded, stable)"},
      {"srand(", "nondeterminism", "srand() — use base/rng.h"},
      {"random(", "nondeterminism", "random() — use base/rng.h"},
      {"rand_r(", "nondeterminism", "rand_r() — use base/rng.h"},
      {"drand48(", "nondeterminism", "drand48() — use base/rng.h"},
      {"random_device", "nondeterminism",
       "std::random_device — nondeterministic seed; use base/rng.h"},
      {"time(", "nondeterminism",
       "time() — wall-clock in kernel code; obs/ owns timing"},
      {"clock(", "nondeterminism",
       "clock() — wall-clock in kernel code; obs/ owns timing"},
      {"unordered_map", "nondeterminism",
       "std::unordered_map — iteration order is implementation-defined; "
       "annotate lookup-only uses with mg_lint:allow(nondeterminism)"},
      {"unordered_set", "nondeterminism",
       "std::unordered_set — iteration order is implementation-defined; "
       "annotate lookup-only uses with mg_lint:allow(nondeterminism)"},
      {"unordered_multimap", "nondeterminism",
       "std::unordered_multimap — iteration order is implementation-defined"},
      {"std::reduce", "nondeterminism",
       "std::reduce — unspecified reduction tree; use vec:: kernels"},
  };
  return rules;
}

const std::vector<TokenRule>& HotPathTokens() {
  static const std::vector<TokenRule> rules = {
      {"new", "hot-path-alloc", "raw new in a hot-path region"},
      {"malloc(", "hot-path-alloc", "malloc in a hot-path region"},
      {"calloc(", "hot-path-alloc", "calloc in a hot-path region"},
      {"realloc(", "hot-path-alloc", "realloc in a hot-path region"},
      {"aligned_alloc(", "hot-path-alloc",
       "aligned_alloc in a hot-path region"},
      {"free(", "hot-path-alloc", "free in a hot-path region"},
      {"push_back(", "hot-path-alloc", "container growth in a hot-path region"},
      {"emplace_back(", "hot-path-alloc",
       "container growth in a hot-path region"},
      {"emplace(", "hot-path-alloc", "container growth in a hot-path region"},
      {"resize(", "hot-path-alloc", "container growth in a hot-path region"},
      {"reserve(", "hot-path-alloc", "container growth in a hot-path region"},
      {"make_unique", "hot-path-alloc",
       "heap allocation in a hot-path region"},
      {"make_shared", "hot-path-alloc",
       "heap allocation in a hot-path region"},
      {"std::vector<", "hot-path-alloc",
       "vector construction in a hot-path region — use a ScratchScope"},
  };
  return rules;
}

// `new` needs a both-sides boundary: `news`, `renew`, `new_x` must not fire.
bool HasNewToken(const std::string& code, size_t* at) {
  size_t pos = 0;
  while ((pos = code.find("new", pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const bool right_ok =
        pos + 3 >= code.size() || !IsIdentChar(code[pos + 3]);
    if (left_ok && right_ok) {
      *at = pos;
      return true;
    }
    pos += 3;
  }
  return false;
}

struct FileScan {
  std::vector<Violation> violations;
  std::vector<KnobRef> knobs;
};

// True when `line_comments[i]` (or a comment-only predecessor line) carries
// mg_lint:allow(rule).
bool IsAllowed(const std::vector<std::string>& code,
               const std::vector<std::string>& comments, size_t li,
               const std::string& rule) {
  const std::string needle = "mg_lint:allow(" + rule + ")";
  if (comments[li].find(needle) != std::string::npos) return true;
  // A comment-only line directly above suppresses the next code line.
  for (size_t i = li; i > 0;) {
    --i;
    const std::string& code_part = code[i];
    const bool comment_only =
        code_part.find_first_not_of(" \t") == std::string::npos &&
        !comments[i].empty();
    if (!comment_only) break;
    if (comments[i].find(needle) != std::string::npos) return true;
  }
  return false;
}

void ExtractKnobs(const std::string& raw_line, const std::string& rel_path,
                  int line_no, std::vector<KnobRef>* knobs) {
  if (raw_line.find("GetEnv") == std::string::npos &&
      raw_line.find("getenv") == std::string::npos) {
    return;
  }
  size_t pos = 0;
  while ((pos = raw_line.find("\"MOCOGRAD_", pos)) != std::string::npos) {
    size_t end = pos + 1;
    while (end < raw_line.size() &&
           (std::isupper(static_cast<unsigned char>(raw_line[end])) ||
            std::isdigit(static_cast<unsigned char>(raw_line[end])) ||
            raw_line[end] == '_')) {
      ++end;
    }
    if (end < raw_line.size() && raw_line[end] == '"') {
      knobs->push_back({raw_line.substr(pos + 1, end - pos - 1), rel_path,
                        line_no});
    }
    pos = end;
  }
}

// Lints one src/ file. `dir` is the first path component under src/.
FileScan ScanSource(const std::string& rel_path, const std::string& dir,
                    const std::string& content) {
  FileScan result;
  const std::vector<std::string> raw = SplitLines(content);
  std::vector<std::string> code, comments;
  StripCommentsAndStrings(raw, &code, &comments);

  const auto& ranks = LayerRanks();
  const auto self_rank = ranks.find(dir);
  bool hot_region = false;

  for (size_t li = 0; li < raw.size(); ++li) {
    const int line_no = static_cast<int>(li) + 1;
    auto emit = [&](const std::string& rule, const std::string& message) {
      if (!IsAllowed(code, comments, li, rule)) {
        result.violations.push_back({rel_path, line_no, rule, message});
      }
    };

    // Hot-path region markers live in comments.
    if (comments[li].find("MG_HOT_PATH_END") != std::string::npos) {
      hot_region = false;
    } else if (comments[li].find("MG_HOT_PATH") != std::string::npos) {
      hot_region = true;
    }

    // Pragmas (code view keeps preprocessor text).
    if (code[li].find("#pragma omp") != std::string::npos) {
      emit("nondeterminism",
           "#pragma omp — threading goes through base/thread_pool.h");
    }
    if (code[li].find("#pragma GCC optimize") != std::string::npos ||
        code[li].find("#pragma clang fp") != std::string::npos ||
        code[li].find("#pragma STDC FP_CONTRACT") != std::string::npos ||
        code[li].find("fast-math") != std::string::npos) {
      emit("nondeterminism",
           "fast-math-style pragma — breaks the docs/SIMD.md determinism "
           "contract (-ffp-contract=off is global)");
    }

    // #include <unordered_map> lines are exempt: the *use* sites are what
    // carry the iteration-order risk and what the allow annotation reviews.
    const bool is_include_line =
        code[li].find("#include") != std::string::npos;
    for (const TokenRule& tr : NondeterminismTokens()) {
      if (is_include_line) break;
      if (FindToken(code[li], tr.token) != std::string::npos) {
        emit(tr.rule, tr.message);
      }
    }

    if (FindToken(code[li], "assert(") != std::string::npos) {
      emit("bare-assert",
           "bare assert() — use MG_CHECK/MG_DCHECK (base/check.h)");
    }

    if (hot_region) {
      size_t at = 0;
      if (HasNewToken(code[li], &at)) {
        emit("hot-path-alloc",
             "raw new in a hot-path region — use a ScratchScope "
             "(base/scratch.h)");
      }
      for (const TokenRule& tr : HotPathTokens()) {
        if (tr.token == "new") continue;  // handled above with both-side check
        if (FindToken(code[li], tr.token) != std::string::npos) {
          emit(tr.rule, tr.message);
        }
      }
    }

    // Layering: #include "dir/..." edges.
    const std::string& cl = code[li];
    const size_t inc = cl.find("#include");
    if (inc != std::string::npos && self_rank != ranks.end()) {
      const size_t q0 = cl.find('"', inc);
      if (q0 != std::string::npos) {
        // Raw line carries the path (the code view blanked the literal).
        const size_t slash = raw[li].find('/', q0 + 1);
        const size_t q1 = raw[li].find('"', q0 + 1);
        if (slash != std::string::npos && q1 != std::string::npos &&
            slash < q1) {
          const std::string target =
              raw[li].substr(q0 + 1, slash - q0 - 1);
          const auto target_rank = ranks.find(target);
          if (target_rank != ranks.end() && target != dir) {
            if (target_rank->second > self_rank->second) {
              emit("layering", "back-edge include: " + dir + " (layer " +
                                   std::to_string(self_rank->second) +
                                   ") must not include " + target +
                                   " (layer " +
                                   std::to_string(target_rank->second) + ")");
            } else if (target_rank->second == self_rank->second) {
              emit("layering", "sibling include: " + dir + " and " + target +
                                   " are same-layer modules and must not "
                                   "couple");
            }
          }
        }
      }
    }

    ExtractKnobs(raw[li], rel_path, line_no, &result.knobs);
  }
  return result;
}

std::string ReadFile(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: mg_lint <repo_root>\n");
    return 2;
  }
  const fs::path root = argv[1];
  const fs::path src = root / "src";
  if (!fs::is_directory(src)) {
    std::fprintf(stderr, "mg_lint: %s is not a directory\n",
                 src.string().c_str());
    return 2;
  }

  std::vector<Violation> violations;
  std::vector<KnobRef> knobs;
  int files_scanned = 0;

  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && IsSourceFile(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& p : files) {
    bool ok = false;
    const std::string content = ReadFile(p, &ok);
    if (!ok) {
      std::fprintf(stderr, "mg_lint: cannot read %s\n", p.string().c_str());
      return 2;
    }
    const std::string rel = fs::relative(p, root).generic_string();
    // First path component under src/ is the module directory.
    const std::string under_src = fs::relative(p, src).generic_string();
    const std::string dir = under_src.substr(0, under_src.find('/'));
    FileScan scan = ScanSource(rel, dir, content);
    violations.insert(violations.end(), scan.violations.begin(),
                      scan.violations.end());
    knobs.insert(knobs.end(), scan.knobs.begin(), scan.knobs.end());
    ++files_scanned;
  }

  // bench/ is scanned for env knobs only (benchmarks may use wall-clock).
  const fs::path bench = root / "bench";
  if (fs::is_directory(bench)) {
    for (const auto& entry : fs::recursive_directory_iterator(bench)) {
      if (!entry.is_regular_file() || !IsSourceFile(entry.path())) continue;
      bool ok = false;
      const std::string content = ReadFile(entry.path(), &ok);
      if (!ok) continue;
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      const std::vector<std::string> lines = SplitLines(content);
      for (size_t li = 0; li < lines.size(); ++li) {
        ExtractKnobs(lines[li], rel, static_cast<int>(li) + 1, &knobs);
      }
    }
  }

  // Every parsed MOCOGRAD_* knob must appear in README.md's knob table.
  bool readme_ok = false;
  const std::string readme = ReadFile(root / "README.md", &readme_ok);
  if (!readme_ok) {
    std::fprintf(stderr, "mg_lint: cannot read %s\n",
                 (root / "README.md").string().c_str());
    return 2;
  }
  std::set<std::string> reported;
  for (const KnobRef& k : knobs) {
    if (readme.find(k.name) == std::string::npos &&
        reported.insert(k.name).second) {
      violations.push_back(
          {k.file, k.line, "env-registry",
           k.name + " is parsed here but missing from README.md's "
                    "runtime-knob table"});
    }
  }

  for (const Violation& v : violations) {
    std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!violations.empty()) {
    std::printf("mg_lint: %zu violation(s) in %d files\n", violations.size(),
                files_scanned);
    return 1;
  }
  std::printf("mg_lint: OK (%d files scanned)\n", files_scanned);
  return 0;
}
