// mg_report — renders a self-contained HTML report from the conflict
// observatory's JSONL output (docs/OBSERVABILITY.md "Conflict telemetry").
//
//   mg_report run.jsonl                        # single-run report
//   mg_report a.jsonl b.jsonl                  # A/B diff of two runs
//   mg_report --out report.html --fail-on-watchdog run.jsonl
//
// Accepts both telemetry records ({"type":"step"|"watchdog",...}) and the
// plain metrics-sink records ({"step":N,"loss_0":...}); a file holding
// several training runs (step id resets to 0, or the method changes) is
// split and every run gets its own section. Diff mode compares each file's
// longest run: side-by-side summaries, overlaid loss/GCD curves, and the
// per-task final-loss gap. Exit codes: 0 ok, 1 usage/parse error,
// 2 --fail-on-watchdog tripped.
//
// The HTML is a single file with inline SVG — no external assets, opens
// anywhere, attaches to CI artifacts.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using mocograd::Result;
using mocograd::obs::JsonValue;
using mocograd::obs::ParseJson;

double kNan = std::numeric_limits<double>::quiet_NaN();

// --- Data model ------------------------------------------------------------

struct PairCosine {
  int i = 0, j = 0;
  double cos = 0.0;
};

struct StepRec {
  int64_t step = 0;
  std::vector<double> losses;
  std::vector<double> grad_norms;
  double mean_gcd = kNan;
  double max_gcd = kNan;
  int conflicting_pairs = 0;
  int num_pairs = 0;
  std::vector<PairCosine> cosines;
  int decisions = 0;
  int decisions_acted = 0;
  std::vector<std::pair<std::string, double>> phase;
};

struct WatchRec {
  int64_t step = 0;
  std::string kind;
  int task = -1;
  double value = kNan;
  double threshold = 0.0;
};

struct Run {
  std::string method;
  std::vector<StepRec> steps;
  std::vector<WatchRec> watchdog;
  int num_tasks() const {
    return steps.empty() ? 0 : static_cast<int>(steps[0].losses.size());
  }
};

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string HtmlEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '&') out += "&amp;";
    else if (c == '<') out += "&lt;";
    else if (c == '>') out += "&gt;";
    else out += c;
  }
  return out;
}

// --- JSONL ingestion -------------------------------------------------------

void NumberArray(const JsonValue& rec, const char* key,
                 std::vector<double>* out) {
  const JsonValue* arr = rec.Find(key);
  if (arr == nullptr || !arr->is_array()) return;
  for (const JsonValue& v : arr->items) {
    out->push_back(v.is_number() ? v.number_value : kNan);
  }
}

StepRec ParseTelemetryStep(const JsonValue& rec) {
  StepRec s;
  s.step = static_cast<int64_t>(rec.NumberOr("step", 0));
  NumberArray(rec, "losses", &s.losses);
  NumberArray(rec, "grad_norms", &s.grad_norms);
  const JsonValue* gcd = rec.Find("gcd");
  if (gcd != nullptr && gcd->is_object()) {
    s.mean_gcd = gcd->NumberOr("mean", kNan);
    s.max_gcd = gcd->NumberOr("max", kNan);
    s.conflicting_pairs = static_cast<int>(gcd->NumberOr("conflicting_pairs", 0));
    s.num_pairs = static_cast<int>(gcd->NumberOr("pairs", 0));
  }
  const JsonValue* cosines = rec.Find("cosines");
  if (cosines != nullptr && cosines->is_array()) {
    for (const JsonValue& t : cosines->items) {
      if (t.is_array() && t.items.size() == 3 && t.items[2].is_number()) {
        s.cosines.push_back({static_cast<int>(t.items[0].number_value),
                             static_cast<int>(t.items[1].number_value),
                             t.items[2].number_value});
      }
    }
  }
  const JsonValue* decisions = rec.Find("decisions");
  if (decisions != nullptr && decisions->is_array()) {
    for (const JsonValue& d : decisions->items) {
      ++s.decisions;
      const JsonValue* acted = d.Find("acted");
      if (acted != nullptr && acted->is_bool() && acted->bool_value) {
        ++s.decisions_acted;
      }
    }
  }
  const JsonValue* phase = rec.Find("phase");
  if (phase != nullptr && phase->is_object()) {
    for (const auto& [k, v] : phase->members) {
      if (v.is_number()) s.phase.emplace_back(k, v.number_value);
    }
  }
  return s;
}

// Metrics-sink records carry loss_<t> / phase_<name> / mean_gcd scalars.
StepRec ParseMetricsStep(const JsonValue& rec) {
  StepRec s;
  s.step = static_cast<int64_t>(rec.NumberOr("step", 0));
  for (int t = 0;; ++t) {
    const JsonValue* v = rec.Find("loss_" + std::to_string(t));
    if (v == nullptr || !v->is_number()) break;
    s.losses.push_back(v->number_value);
  }
  s.mean_gcd = rec.NumberOr("mean_gcd", kNan);
  for (const auto& [k, v] : rec.members) {
    if (k.rfind("phase_", 0) == 0 && v.is_number()) {
      s.phase.emplace_back(k.substr(6), v.number_value);
    }
  }
  return s;
}

// Splits one JSONL file into runs: a step record whose id does not increase
// (or whose method changes) starts a new run. Watchdog records attach to
// the current run.
bool ParseFile(const std::string& path, std::vector<Run>* runs) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "mg_report: cannot open %s\n", path.c_str());
    return false;
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    ++line_no;
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "mg_report: %s:%d: %s\n", path.c_str(), line_no,
                   parsed.status().ToString().c_str());
      return false;
    }
    const JsonValue& rec = parsed.value();
    if (!rec.is_object()) continue;
    const std::string type = rec.StringOr("type", "");
    if (type == "watchdog") {
      if (runs->empty()) runs->push_back({});
      runs->back().watchdog.push_back(
          {static_cast<int64_t>(rec.NumberOr("step", 0)),
           rec.StringOr("kind", "?"),
           static_cast<int>(rec.NumberOr("task", -1)),
           rec.NumberOr("value", kNan), rec.NumberOr("threshold", 0.0)});
      continue;
    }
    const std::string method =
        type == "step" ? rec.StringOr("method", "?") : std::string("metrics");
    StepRec s = type == "step" ? ParseTelemetryStep(rec)
                               : ParseMetricsStep(rec);
    const bool new_run = runs->empty() || runs->back().method != method ||
                         (!runs->back().steps.empty() &&
                          s.step <= runs->back().steps.back().step);
    if (new_run) {
      runs->push_back({});
      runs->back().method = method;
    }
    runs->back().steps.push_back(std::move(s));
  }
  return true;
}

// --- SVG helpers -----------------------------------------------------------

const char* kPalette[] = {"#3366cc", "#dc3912", "#109618", "#ff9900",
                          "#990099", "#0099c6", "#dd4477", "#66aa00"};

struct Series {
  std::string name;
  std::string color;
  bool dashed = false;
  std::vector<double> x;
  std::vector<double> y;
};

// A line chart with axes, min/max labels and a legend. Skips NaNs.
std::string LineChart(const std::string& title,
                      const std::vector<Series>& series, int w = 560,
                      int h = 240) {
  const int ml = 56, mr = 12, mt = 24, mb = 28;
  double xmin = kNan, xmax = kNan, ymin = kNan, ymax = kNan;
  for (const Series& s : series) {
    for (size_t i = 0; i < s.x.size(); ++i) {
      if (!std::isfinite(s.y[i])) continue;
      if (!std::isfinite(xmin) || s.x[i] < xmin) xmin = s.x[i];
      if (!std::isfinite(xmax) || s.x[i] > xmax) xmax = s.x[i];
      if (!std::isfinite(ymin) || s.y[i] < ymin) ymin = s.y[i];
      if (!std::isfinite(ymax) || s.y[i] > ymax) ymax = s.y[i];
    }
  }
  std::string out = "<svg width=\"" + std::to_string(w) + "\" height=\"" +
                    std::to_string(h) + "\" xmlns=\"http://www.w3.org/2000/svg\">";
  out += "<text x=\"8\" y=\"15\" class=\"t\">" + HtmlEscape(title) + "</text>";
  if (!std::isfinite(xmin) || !std::isfinite(ymin)) {
    out += "<text x=\"60\" y=\"100\">no data</text></svg>";
    return out;
  }
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax == ymin) ymax = ymin + (ymin == 0 ? 1 : std::fabs(ymin) * 0.1);
  const double px = (w - ml - mr) / (xmax - xmin);
  const double py = (h - mt - mb) / (ymax - ymin);
  auto X = [&](double x) { return ml + (x - xmin) * px; };
  auto Y = [&](double y) { return h - mb - (y - ymin) * py; };
  // Axes + labels.
  out += "<line class=\"ax\" x1=\"" + Fmt("%.1f", ml) + "\" y1=\"" +
         Fmt("%.1f", mt) + "\" x2=\"" + Fmt("%.1f", ml) + "\" y2=\"" +
         Fmt("%.1f", h - mb) + "\"/>";
  out += "<line class=\"ax\" x1=\"" + Fmt("%.1f", ml) + "\" y1=\"" +
         Fmt("%.1f", h - mb) + "\" x2=\"" + Fmt("%.1f", w - mr) +
         "\" y2=\"" + Fmt("%.1f", h - mb) + "\"/>";
  out += "<text class=\"lb\" x=\"4\" y=\"" + Fmt("%.1f", mt + 10) + "\">" +
         Fmt("%.3g", ymax) + "</text>";
  out += "<text class=\"lb\" x=\"4\" y=\"" + Fmt("%.1f", h - mb) + "\">" +
         Fmt("%.3g", ymin) + "</text>";
  out += "<text class=\"lb\" x=\"" + Fmt("%.1f", ml) + "\" y=\"" +
         Fmt("%.1f", h - 8) + "\">" + Fmt("%.0f", xmin) + "</text>";
  out += "<text class=\"lb\" x=\"" + Fmt("%.1f", w - mr - 30) + "\" y=\"" +
         Fmt("%.1f", h - 8) + "\">" + Fmt("%.0f", xmax) + "</text>";
  // Polylines.
  for (const Series& s : series) {
    std::string pts;
    for (size_t i = 0; i < s.x.size(); ++i) {
      if (!std::isfinite(s.y[i])) continue;
      pts += Fmt("%.1f", X(s.x[i])) + "," + Fmt("%.1f", Y(s.y[i])) + " ";
    }
    out += "<polyline fill=\"none\" stroke=\"" + s.color +
           "\" stroke-width=\"1.5\"" +
           (s.dashed ? " stroke-dasharray=\"5,3\"" : "") + " points=\"" +
           pts + "\"/>";
  }
  // Legend.
  double lx = ml + 8;
  for (const Series& s : series) {
    out += "<line x1=\"" + Fmt("%.1f", lx) + "\" y1=\"" + Fmt("%.1f", mt - 6) +
           "\" x2=\"" + Fmt("%.1f", lx + 16) + "\" y2=\"" +
           Fmt("%.1f", mt - 6) + "\" stroke=\"" + s.color +
           "\" stroke-width=\"2\"" +
           (s.dashed ? " stroke-dasharray=\"5,3\"" : "") + "/>";
    out += "<text class=\"lb\" x=\"" + Fmt("%.1f", lx + 20) + "\" y=\"" +
           Fmt("%.1f", mt - 2) + "\">" + HtmlEscape(s.name) + "</text>";
    lx += 26 + 7.0 * s.name.size();
  }
  out += "</svg>";
  return out;
}

// Blue (aligned, GCD 0) → white (orthogonal, GCD 1) → red (conflict, GCD 2).
std::string GcdColor(double gcd) {
  const double t = std::min(2.0, std::max(0.0, gcd)) / 2.0;
  int r, g, b;
  if (t < 0.5) {
    const double u = t / 0.5;
    r = static_cast<int>(51 + u * (255 - 51));
    g = static_cast<int>(102 + u * (255 - 102));
    b = 255;
  } else {
    const double u = (t - 0.5) / 0.5;
    r = 255;
    g = static_cast<int>(255 - u * 200);
    b = static_cast<int>(255 - u * 200);
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

// Pairwise-GCD heat-map over time: one row per (i, j) pair, one column per
// sampled step (downsampled to at most `max_cols` columns).
std::string GcdHeatmap(const Run& run, int max_cols = 140) {
  std::vector<std::pair<int, int>> pairs;
  for (const StepRec& s : run.steps) {
    for (const PairCosine& c : s.cosines) {
      const std::pair<int, int> key = {c.i, c.j};
      if (std::find(pairs.begin(), pairs.end(), key) == pairs.end()) {
        pairs.push_back(key);
      }
    }
  }
  if (pairs.empty()) return "";
  std::sort(pairs.begin(), pairs.end());
  const int cols =
      std::min(max_cols, static_cast<int>(run.steps.size()));
  const int cell_w = std::max(3, 560 / std::max(1, cols));
  const int cell_h = 16;
  const int ml = 64, mt = 24;
  const int w = ml + cols * cell_w + 12;
  const int h = mt + static_cast<int>(pairs.size()) * cell_h + 24;
  std::string out = "<svg width=\"" + std::to_string(w) + "\" height=\"" +
                    std::to_string(h) +
                    "\" xmlns=\"http://www.w3.org/2000/svg\">";
  out += "<text x=\"8\" y=\"15\" class=\"t\">pairwise GCD over time "
         "(blue aligned &#183; white orthogonal &#183; red conflict)</text>";
  for (size_t p = 0; p < pairs.size(); ++p) {
    out += "<text class=\"lb\" x=\"4\" y=\"" +
           std::to_string(mt + static_cast<int>(p) * cell_h + 12) + "\">(" +
           std::to_string(pairs[p].first) + "," +
           std::to_string(pairs[p].second) + ")</text>";
  }
  for (int c = 0; c < cols; ++c) {
    const size_t idx = run.steps.size() * c / cols;
    const StepRec& s = run.steps[idx];
    for (const PairCosine& pc : s.cosines) {
      const auto it = std::find(pairs.begin(), pairs.end(),
                                std::make_pair(pc.i, pc.j));
      const int row = static_cast<int>(it - pairs.begin());
      out += "<rect x=\"" + std::to_string(ml + c * cell_w) + "\" y=\"" +
             std::to_string(mt + row * cell_h) + "\" width=\"" +
             std::to_string(cell_w) + "\" height=\"" +
             std::to_string(cell_h - 1) + "\" fill=\"" +
             GcdColor(1.0 - pc.cos) + "\"/>";
    }
  }
  out += "<text class=\"lb\" x=\"" + std::to_string(ml) + "\" y=\"" +
         std::to_string(h - 6) + "\">step " +
         std::to_string(run.steps.front().step) + "</text>";
  out += "<text class=\"lb\" x=\"" + std::to_string(w - 70) + "\" y=\"" +
         std::to_string(h - 6) + "\">step " +
         std::to_string(run.steps.back().step) + "</text>";
  out += "</svg>";
  return out;
}

// Mean per-phase seconds as horizontal bars.
std::string PhaseBars(const Run& run) {
  std::vector<std::pair<std::string, double>> mean;
  for (const StepRec& s : run.steps) {
    for (const auto& [name, secs] : s.phase) {
      bool found = false;
      for (auto& m : mean) {
        if (m.first == name) {
          m.second += secs;
          found = true;
          break;
        }
      }
      if (!found) mean.emplace_back(name, secs);
    }
  }
  if (mean.empty()) return "";
  double total = 0.0;
  for (auto& m : mean) {
    m.second /= run.steps.size();
    total += m.second;
  }
  if (total <= 0.0) return "";
  std::string out = "<table class=\"ph\"><tr><th>phase</th>"
                    "<th>mean s/step</th><th></th></tr>";
  for (const auto& [name, secs] : mean) {
    const int px = static_cast<int>(320.0 * secs / total + 0.5);
    out += "<tr><td>" + HtmlEscape(name) + "</td><td>" +
           Fmt("%.3g", secs) + "</td><td><div class=\"bar\" style=\"width:" +
           std::to_string(px) + "px\"></div></td></tr>";
  }
  out += "</table>";
  return out;
}

std::string WatchdogTable(const Run& run) {
  if (run.watchdog.empty()) {
    return "<p class=\"okmsg\">no watchdog events</p>";
  }
  std::string out =
      "<table class=\"wd\"><tr><th>step</th><th>kind</th><th>task</th>"
      "<th>value</th><th>threshold</th></tr>";
  for (const WatchRec& w : run.watchdog) {
    out += "<tr><td>" + std::to_string(w.step) + "</td><td>" +
           HtmlEscape(w.kind) + "</td><td>" + std::to_string(w.task) +
           "</td><td>" +
           (std::isfinite(w.value) ? Fmt("%.4g", w.value) : "non-finite") +
           "</td><td>" + Fmt("%.4g", w.threshold) + "</td></tr>";
  }
  out += "</table>";
  return out;
}

// --- Report sections -------------------------------------------------------

std::vector<Series> LossSeries(const Run& run, const std::string& suffix,
                               bool dashed) {
  std::vector<Series> out;
  for (int t = 0; t < run.num_tasks(); ++t) {
    Series s;
    s.name = "task " + std::to_string(t) + suffix;
    s.color = kPalette[t % 8];
    s.dashed = dashed;
    for (const StepRec& r : run.steps) {
      if (t < static_cast<int>(r.losses.size())) {
        s.x.push_back(static_cast<double>(r.step));
        s.y.push_back(r.losses[t]);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string SummaryTable(const std::vector<const Run*>& runs) {
  std::string out =
      "<table class=\"sm\"><tr><th>run</th><th>steps</th><th>tasks</th>"
      "<th>final losses</th><th>mean GCD</th><th>conflict rate</th>"
      "<th>acted/decisions</th><th>watchdog</th></tr>";
  for (const Run* r : runs) {
    double gcd_sum = 0.0;
    int gcd_n = 0, conf = 0, pairs = 0, dec = 0, acted = 0;
    for (const StepRec& s : r->steps) {
      if (std::isfinite(s.mean_gcd)) {
        gcd_sum += s.mean_gcd;
        ++gcd_n;
      }
      conf += s.conflicting_pairs;
      pairs += s.num_pairs;
      dec += s.decisions;
      acted += s.decisions_acted;
    }
    std::string finals;
    if (!r->steps.empty()) {
      for (double l : r->steps.back().losses) {
        finals += (finals.empty() ? "" : ", ") + Fmt("%.4g", l);
      }
    }
    out += "<tr><td>" + HtmlEscape(r->method) + "</td><td>" +
           std::to_string(r->steps.size()) + "</td><td>" +
           std::to_string(r->num_tasks()) + "</td><td>" + finals +
           "</td><td>" +
           (gcd_n > 0 ? Fmt("%.4f", gcd_sum / gcd_n) : "-") + "</td><td>" +
           (pairs > 0 ? Fmt("%.3f", static_cast<double>(conf) / pairs) : "-") +
           "</td><td>" + std::to_string(acted) + "/" + std::to_string(dec) +
           "</td><td>" + std::to_string(r->watchdog.size()) +
           "</td></tr>";
  }
  out += "</table>";
  return out;
}

std::string RunSection(const Run& run, const std::string& heading) {
  std::string out = "<h2>" + HtmlEscape(heading) + "</h2>";
  out += SummaryTable({&run});
  out += LineChart("training loss", LossSeries(run, "", false));
  Series mean_gcd{"mean GCD", "#3366cc", false, {}, {}};
  Series max_gcd{"max GCD", "#dc3912", false, {}, {}};
  Series conf_rate{"conflict rate", "#109618", false, {}, {}};
  for (const StepRec& s : run.steps) {
    const double x = static_cast<double>(s.step);
    mean_gcd.x.push_back(x);
    mean_gcd.y.push_back(s.mean_gcd);
    max_gcd.x.push_back(x);
    max_gcd.y.push_back(s.max_gcd);
    conf_rate.x.push_back(x);
    conf_rate.y.push_back(
        s.num_pairs > 0
            ? static_cast<double>(s.conflicting_pairs) / s.num_pairs
            : kNan);
  }
  out += LineChart("gradient conflict (GCD = 1 - cos)",
                   {mean_gcd, max_gcd, conf_rate});
  out += GcdHeatmap(run);
  if (run.num_tasks() > 0 && !run.steps.empty() &&
      !run.steps.front().grad_norms.empty()) {
    std::vector<Series> norms;
    for (int t = 0; t < run.num_tasks(); ++t) {
      Series s{"||g_" + std::to_string(t) + "||", kPalette[t % 8], false,
               {}, {}};
      for (const StepRec& r : run.steps) {
        if (t < static_cast<int>(r.grad_norms.size())) {
          s.x.push_back(static_cast<double>(r.step));
          s.y.push_back(r.grad_norms[t]);
        }
      }
      norms.push_back(std::move(s));
    }
    out += LineChart("per-task gradient norm", norms);
  }
  out += PhaseBars(run);
  out += "<h3>watchdog</h3>" + WatchdogTable(run);
  return out;
}

const Run* LongestRun(const std::vector<Run>& runs) {
  const Run* best = nullptr;
  for (const Run& r : runs) {
    if (best == nullptr || r.steps.size() > best->steps.size()) best = &r;
  }
  return best;
}

std::string DiffSection(const Run& a, const Run& b) {
  std::string out = "<h2>run diff: " + HtmlEscape(a.method) + " vs " +
                    HtmlEscape(b.method) + "</h2>";
  out += SummaryTable({&a, &b});
  std::vector<Series> losses = LossSeries(a, " [A]", false);
  std::vector<Series> lb = LossSeries(b, " [B]", true);
  losses.insert(losses.end(), lb.begin(), lb.end());
  out += LineChart("training loss (A solid, B dashed)", losses, 760, 280);
  Series ga{"mean GCD [A]", "#3366cc", false, {}, {}};
  Series gb{"mean GCD [B]", "#dc3912", true, {}, {}};
  for (const StepRec& s : a.steps) {
    ga.x.push_back(static_cast<double>(s.step));
    ga.y.push_back(s.mean_gcd);
  }
  for (const StepRec& s : b.steps) {
    gb.x.push_back(static_cast<double>(s.step));
    gb.y.push_back(s.mean_gcd);
  }
  out += LineChart("mean GCD", {ga, gb}, 760, 240);
  // Final-loss gap per task.
  const int k = std::min(a.num_tasks(), b.num_tasks());
  if (k > 0 && !a.steps.empty() && !b.steps.empty()) {
    out += "<table class=\"sm\"><tr><th>task</th><th>final loss A</th>"
           "<th>final loss B</th><th>B - A</th></tr>";
    for (int t = 0; t < k; ++t) {
      const double la = a.steps.back().losses[t];
      const double lbv = b.steps.back().losses[t];
      out += "<tr><td>" + std::to_string(t) + "</td><td>" +
             Fmt("%.5g", la) + "</td><td>" + Fmt("%.5g", lbv) + "</td><td>" +
             Fmt("%+.5g", lbv - la) + "</td></tr>";
    }
    out += "</table>";
  }
  return out;
}

const char* kCss =
    "body{font:14px sans-serif;margin:24px;color:#222}"
    "h1{font-size:20px}h2{font-size:16px;margin-top:28px;"
    "border-bottom:1px solid #ccc}h3{font-size:14px}"
    "table{border-collapse:collapse;margin:8px 0}"
    "td,th{border:1px solid #ccc;padding:3px 8px;text-align:left;"
    "font-size:13px}th{background:#f2f2f2}"
    ".bar{background:#3366cc;height:10px}"
    ".okmsg{color:#109618}"
    "svg{margin:8px 12px 8px 0}"
    "svg .t{font:13px sans-serif;font-weight:bold}"
    "svg .lb{font:11px sans-serif;fill:#555}"
    "svg .ax{stroke:#999;stroke-width:1}";

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "mg_report.html";
  bool fail_on_watchdog = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fail-on-watchdog") == 0) {
      fail_on_watchdog = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: mg_report [--out report.html] [--fail-on-watchdog] "
          "run_a.jsonl [run_b.jsonl]\n"
          "Renders a self-contained HTML report from conflict-telemetry /\n"
          "metrics JSONL; two inputs produce an A/B run diff.\n");
      return 0;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty() || inputs.size() > 2) {
    std::fprintf(stderr, "mg_report: expected 1 or 2 input files "
                         "(see --help)\n");
    return 1;
  }

  std::vector<std::vector<Run>> files(inputs.size());
  size_t watchdog_total = 0;
  for (size_t f = 0; f < inputs.size(); ++f) {
    if (!ParseFile(inputs[f], &files[f])) return 1;
    if (files[f].empty()) {
      std::fprintf(stderr, "mg_report: %s holds no records\n",
                   inputs[f].c_str());
      return 1;
    }
    for (const Run& r : files[f]) watchdog_total += r.watchdog.size();
  }

  std::string html = "<!doctype html><html><head><meta charset=\"utf-8\">"
                     "<title>mg_report</title><style>";
  html += kCss;
  html += "</style></head><body><h1>mg_report</h1>";
  if (inputs.size() == 1) {
    html += "<p>source: <code>" + HtmlEscape(inputs[0]) + "</code></p>";
    int idx = 0;
    for (const Run& r : files[0]) {
      html += RunSection(r, "run " + std::to_string(idx++) + " — " +
                                r.method);
    }
  } else {
    html += "<p>A: <code>" + HtmlEscape(inputs[0]) + "</code> &#8212; B: "
            "<code>" + HtmlEscape(inputs[1]) + "</code></p>";
    const Run* a = LongestRun(files[0]);
    const Run* b = LongestRun(files[1]);
    html += DiffSection(*a, *b);
    html += RunSection(*a, "A — " + a->method);
    html += RunSection(*b, "B — " + b->method);
  }
  html += "</body></html>\n";

  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "mg_report: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(html.data(), 1, html.size(), out);
  std::fclose(out);
  std::fprintf(stderr, "mg_report: wrote %s (%zu runs%s)\n", out_path.c_str(),
               files.size() == 1 ? files[0].size()
                                 : files[0].size() + files[1].size(),
               watchdog_total > 0
                   ? (", " + std::to_string(watchdog_total) +
                      " watchdog events").c_str()
                   : "");
  if (fail_on_watchdog && watchdog_total > 0) {
    std::fprintf(stderr,
                 "mg_report: --fail-on-watchdog: %zu watchdog events\n",
                 watchdog_total);
    return 2;
  }
  return 0;
}
