#!/usr/bin/env bash
# mg_report end-to-end smoke: trains two small runs (MoCoGrad vs PCGrad)
# with the conflict-telemetry channel on, schema-validates both JSONL
# files, renders the single-run HTML report and the A/B diff, and fails on
# watchdog events. Registered as the `mg_report_smoke` ctest; the CI job
# uploads the HTML artifacts.
#
# usage: mg_report_smoke.sh <build_dir> [out_dir]
set -euo pipefail

build_dir=${1:?usage: mg_report_smoke.sh <build_dir> [out_dir]}
out_dir=${2:-"$build_dir/mg_report_smoke"}
mkdir -p "$out_dir"
rm -f "$out_dir"/moco.jsonl "$out_dir"/pcgrad.jsonl

demo="$build_dir/examples/example_telemetry_demo"
validate="$build_dir/tools/validate_json"
report="$build_dir/tools/mg_report"

"$demo" mocograd "$out_dir/moco.jsonl" 60 > /dev/null
"$demo" pcgrad "$out_dir/pcgrad.jsonl" 60 > /dev/null

"$validate" --telemetry "$out_dir/moco.jsonl" "$out_dir/pcgrad.jsonl"

"$report" --out "$out_dir/report.html" --fail-on-watchdog \
  "$out_dir/moco.jsonl"
"$report" --out "$out_dir/diff.html" --fail-on-watchdog \
  "$out_dir/moco.jsonl" "$out_dir/pcgrad.jsonl"

# The reports must be non-trivial self-contained HTML with rendered charts.
for f in "$out_dir/report.html" "$out_dir/diff.html"; do
  grep -q "<svg" "$f" || { echo "mg_report_smoke: no SVG in $f"; exit 1; }
  grep -q "watchdog" "$f" || { echo "mg_report_smoke: no watchdog section in $f"; exit 1; }
done
grep -q "run diff" "$out_dir/diff.html" || {
  echo "mg_report_smoke: diff.html is missing the A/B section"; exit 1; }

echo "mg_report_smoke: OK ($out_dir)"
