#!/usr/bin/env sh
# Build the repository and run the full verification suite as a sequence of
# named passes, printing a PASS/FAIL summary table at the end and exiting
# non-zero if any pass failed (the table and the exit message name the
# failing passes).
#
# Release passes:
#   release-build      configure + build the default (Release) tree
#   ctest-threads-1/4  full suite with the pool forced serial and at 4
#                      threads — pool size never changes results
#                      (docs/ARCHITECTURE.md, parallel_determinism_test)
#   obs-smoke          traced + metered + telemetered training run; the
#                      emitted Chrome-trace JSON must parse, metrics JSONL
#                      must be line-valid, and conflict telemetry must pass
#                      the --telemetry schema check (docs/OBSERVABILITY.md)
#   serve-smoke        bench_serve --smoke closed/open-loop sweep; the
#                      emitted JSON must pass the --serve schema check
#                      (docs/SERVING.md)
#   ctest-simd-off     full suite with the hardware SIMD backend disabled
#                      (docs/SIMD.md)
#   ctest-isa-scalar   full suite with the runtime ISA dispatch capped at
#                      the scalar tier (MOCOGRAD_SIMD_ISA=scalar) — one
#                      binary carries every tier and each must reproduce
#                      the same bits (docs/SIMD.md "Runtime dispatch")
#   ctest-isa-sse      same cap at the SSE tier (the x86-64 baseline
#                      vector path; falls back to scalar elsewhere)
#   ctest-gemm-block   full suite under deliberately tiny, ragged GEMM
#                      blocking, hardware and scalar backends — blocking is
#                      a loop-order choice, never a results choice
#   ctest-autograd-seq full suite on the sequential backward executor
#                      (MOCOGRAD_AUTOGRAD_EXEC=seq) — the ready-queue
#                      engine is bit-identical to the linear replay, so the
#                      fallback must stay green too (docs/AUTOGRAD.md)
#   simd-diff          training stdout byte-identical with SIMD on and off
#   analyze            tools/mg_analyze call-graph-aware invariant analyzer
#                      over the tree (docs/CORRECTNESS.md)
#   thread-safety      Clang build with -Wthread-safety promoted to error —
#                      proves the base/mutex.h lock annotations
#                      (skipped when clang is not installed; CI's release
#                      leg always runs it)
#   clang-tidy         bugprone-*/performance-*/concurrency-* checks over
#                      src/ via compile_commands.json (skipped when
#                      clang-tidy is not installed)
#   docs-links         markdown cross-reference checker
#
# Sanitizer passes (skipped with --fast; see docs/CORRECTNESS.md):
#   asan-build/ctest/smoke   AddressSanitizer + UBSan build in build-asan:
#                            full suite serial, the determinism tests at
#                            pools 2 and 8, and a trainer smoke run
#   tsan-build/ctest/smoke   ThreadSanitizer build in build-tsan: same
#                            shape, pools stress the fork-join contract
#
# Usage: tools/run_tests.sh [--fast] [build-dir]   (default: build)
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

fast=0
if [ "${1:-}" = "--fast" ]; then
  fast=1
  shift
fi
build_dir=${1:-"$repo_root/build"}
asan_dir="$repo_root/build-asan"
tsan_dir="$repo_root/build-tsan"

# Sanitizer runtime options: fail hard on any finding, with usable stacks.
# Suppression files under tools/sanitizers/ are picked up when present —
# each entry there must carry a justifying comment (docs/CORRECTNESS.md).
ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
if [ -f "$repo_root/tools/sanitizers/asan.supp" ]; then
  ASAN_OPTIONS="$ASAN_OPTIONS:suppressions=$repo_root/tools/sanitizers/asan.supp"
fi
if [ -f "$repo_root/tools/sanitizers/ubsan.supp" ]; then
  UBSAN_OPTIONS="$UBSAN_OPTIONS:suppressions=$repo_root/tools/sanitizers/ubsan.supp"
fi
if [ -f "$repo_root/tools/sanitizers/tsan.supp" ]; then
  TSAN_OPTIONS="$TSAN_OPTIONS:suppressions=$repo_root/tools/sanitizers/tsan.supp"
fi
export ASAN_OPTIONS UBSAN_OPTIONS TSAN_OPTIONS

results=""   # newline-separated "status name" records, in run order
failed=""    # space-separated names of failing passes

# run_pass <name> <function> — runs the pass, records PASS/FAIL, and keeps
# going so the summary table covers every pass even after a failure.
run_pass() {
  pass_name=$1
  echo ""
  echo "==> pass: $pass_name"
  if "$2"; then
    results="${results}PASS $pass_name
"
  else
    results="${results}FAIL $pass_name
"
    failed="$failed $pass_name"
  fi
}

# skip_pass <name> <why> — records a skip without running anything.
skip_pass() {
  echo ""
  echo "==> pass: $1 (skipped: $2)"
  results="${results}SKIP $1
"
}

# --- Release passes ---------------------------------------------------------

pass_release_build() {
  cmake -B "$build_dir" -S "$repo_root" &&
    cmake --build "$build_dir" -j
}

pass_ctest_threads_1() {
  (cd "$build_dir" && MOCOGRAD_NUM_THREADS=1 ctest --output-on-failure -j)
}

pass_ctest_threads_4() {
  (cd "$build_dir" && MOCOGRAD_NUM_THREADS=4 ctest --output-on-failure -j)
}

pass_obs_smoke() {
  trace_json="$build_dir/obs_smoke_trace.json"
  metrics_jsonl="$build_dir/obs_smoke_metrics.jsonl"
  telemetry_jsonl="$build_dir/obs_smoke_telemetry.jsonl"
  rm -f "$trace_json" "$metrics_jsonl" "$telemetry_jsonl"
  MOCOGRAD_TRACE="$trace_json" MOCOGRAD_METRICS="$metrics_jsonl" \
    MOCOGRAD_TELEMETRY="$telemetry_jsonl" \
    "$build_dir/examples/example_quickstart" > /dev/null || return 1
  test -s "$trace_json" ||
    { echo "no trace written to $trace_json"; return 1; }
  test -s "$metrics_jsonl" ||
    { echo "no metrics written to $metrics_jsonl"; return 1; }
  test -s "$telemetry_jsonl" ||
    { echo "no telemetry written to $telemetry_jsonl"; return 1; }
  "$build_dir/tools/validate_json" "$trace_json" &&
    "$build_dir/tools/validate_json" --jsonl "$metrics_jsonl" &&
    "$build_dir/tools/validate_json" --telemetry "$telemetry_jsonl"
}

pass_serve_smoke() {
  serve_json="$build_dir/serve_smoke_bench.json"
  rm -f "$serve_json"
  "$build_dir/bench/bench_serve" --smoke "$serve_json" > /dev/null || return 1
  test -s "$serve_json" ||
    { echo "no serving results written to $serve_json"; return 1; }
  "$build_dir/tools/validate_json" --serve "$serve_json"
}

pass_ctest_simd_off() {
  (cd "$build_dir" && MOCOGRAD_SIMD=0 ctest --output-on-failure -j)
}

pass_ctest_isa_scalar() {
  (cd "$build_dir" && MOCOGRAD_SIMD_ISA=scalar ctest --output-on-failure -j)
}

pass_ctest_isa_sse() {
  (cd "$build_dir" && MOCOGRAD_SIMD_ISA=sse ctest --output-on-failure -j)
}

pass_ctest_gemm_block() {
  (cd "$build_dir" &&
    MOCOGRAD_GEMM_BLOCK=10,24,32 ctest --output-on-failure -j) &&
  (cd "$build_dir" &&
    MOCOGRAD_GEMM_BLOCK=10,24,32 MOCOGRAD_SIMD=0 ctest --output-on-failure -j)
}

pass_ctest_autograd_seq() {
  (cd "$build_dir" &&
    MOCOGRAD_AUTOGRAD_EXEC=seq ctest --output-on-failure -j)
}

pass_simd_diff() {
  simd_on="$build_dir/simd_smoke_on.txt"
  simd_off="$build_dir/simd_smoke_off.txt"
  "$build_dir/examples/example_quickstart" > "$simd_on" || return 1
  MOCOGRAD_SIMD=0 "$build_dir/examples/example_quickstart" > "$simd_off" ||
    return 1
  diff "$simd_on" "$simd_off" || {
    echo "training output differs between MOCOGRAD_SIMD=1 and =0"
    return 1
  }
}

pass_analyze() {
  "$build_dir/tools/mg_analyze" "$repo_root"
}

# Clang-only passes. The annotations in base/mutex.h are no-ops under GCC;
# a Clang build with thread-safety warnings promoted to errors is what
# actually proves the lock discipline, so run it whenever clang is around.
clang_thread_safety_dir="$repo_root/build-clang-tsafety"

pass_thread_safety() {
  cmake -B "$clang_thread_safety_dir" -S "$repo_root" \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ &&
    cmake --build "$clang_thread_safety_dir" -j
}

pass_clang_tidy() {
  # compile_commands.json is exported by the main build configure.
  test -f "$build_dir/compile_commands.json" ||
    { echo "no compile_commands.json in $build_dir"; return 1; }
  find "$repo_root/src" -name '*.cc' | sort |
    xargs clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*'
}

pass_docs_links() {
  "$repo_root/tools/check_docs_links.sh"
}

# --- Sanitizer passes -------------------------------------------------------
# Each sanitizer gets its own build tree; ASan+UBSan and TSan are mutually
# exclusive instrumentations. The ctest passes run the full suite with the
# pool forced serial, then re-run the determinism integration tests at
# pools 2 and 8 — the configurations where the fork-join and SIMD
# determinism contracts can actually break.

sanitizer_ctest() {
  dir=$1
  (cd "$dir" && MOCOGRAD_NUM_THREADS=1 ctest --output-on-failure -j) &&
  (cd "$dir" &&
    MOCOGRAD_NUM_THREADS=2 ctest -R determinism --output-on-failure -j) &&
  (cd "$dir" &&
    MOCOGRAD_NUM_THREADS=8 ctest -R determinism --output-on-failure -j)
}

pass_asan_build() {
  cmake -B "$asan_dir" -S "$repo_root" \
    -DMOCOGRAD_SANITIZE=address,undefined &&
    cmake --build "$asan_dir" -j
}

pass_asan_ctest() {
  sanitizer_ctest "$asan_dir"
}

pass_asan_smoke() {
  "$asan_dir/examples/example_quickstart" > /dev/null
}

pass_tsan_build() {
  cmake -B "$tsan_dir" -S "$repo_root" -DMOCOGRAD_SANITIZE=thread &&
    cmake --build "$tsan_dir" -j
}

pass_tsan_ctest() {
  sanitizer_ctest "$tsan_dir"
}

pass_tsan_smoke() {
  MOCOGRAD_NUM_THREADS=4 "$tsan_dir/examples/example_quickstart" > /dev/null
}

# --- Drive ------------------------------------------------------------------

run_pass release-build pass_release_build
run_pass ctest-threads-1 pass_ctest_threads_1
run_pass ctest-threads-4 pass_ctest_threads_4
run_pass obs-smoke pass_obs_smoke
run_pass serve-smoke pass_serve_smoke
run_pass ctest-simd-off pass_ctest_simd_off
run_pass ctest-isa-scalar pass_ctest_isa_scalar
run_pass ctest-isa-sse pass_ctest_isa_sse
run_pass ctest-gemm-block pass_ctest_gemm_block
run_pass ctest-autograd-seq pass_ctest_autograd_seq
run_pass simd-diff pass_simd_diff
run_pass analyze pass_analyze
if command -v clang++ >/dev/null 2>&1; then
  run_pass thread-safety pass_thread_safety
else
  skip_pass thread-safety "clang not installed"
fi
if command -v clang-tidy >/dev/null 2>&1; then
  run_pass clang-tidy pass_clang_tidy
else
  skip_pass clang-tidy "clang-tidy not installed"
fi
run_pass docs-links pass_docs_links

if [ "$fast" = 1 ]; then
  skip_pass asan-build "--fast"
  skip_pass asan-ctest "--fast"
  skip_pass asan-smoke "--fast"
  skip_pass tsan-build "--fast"
  skip_pass tsan-ctest "--fast"
  skip_pass tsan-smoke "--fast"
else
  run_pass asan-build pass_asan_build
  run_pass asan-ctest pass_asan_ctest
  run_pass asan-smoke pass_asan_smoke
  run_pass tsan-build pass_tsan_build
  run_pass tsan-ctest pass_tsan_ctest
  run_pass tsan-smoke pass_tsan_smoke
fi

echo ""
echo "== run_tests.sh summary =="
printf '%s' "$results" | while IFS=' ' read -r status name; do
  printf '  %-4s  %s\n' "$status" "$name"
done

if [ -n "$failed" ]; then
  echo ""
  echo "FAIL: failing passes:$failed"
  exit 1
fi
echo "OK: all passes green"
