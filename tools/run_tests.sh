#!/usr/bin/env sh
# Build the repository and run the full test suite twice: once with the
# thread pool forced serial (MOCOGRAD_NUM_THREADS=1) and once at 4
# threads. The two runs must both pass — the parallel compute layer's
# contract is that pool size never changes results (bit-identical; see
# docs/ARCHITECTURE.md and tests/integration/parallel_determinism_test.cc).
#
# Usage: tools/run_tests.sh [build-dir]   (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j

for threads in 1 4; do
  echo "==> ctest with MOCOGRAD_NUM_THREADS=$threads"
  (cd "$build_dir" && MOCOGRAD_NUM_THREADS=$threads ctest --output-on-failure -j)
done

echo "OK: all tests passed at pool sizes 1 and 4"
