#!/usr/bin/env sh
# Build the repository and run the full test suite twice: once with the
# thread pool forced serial (MOCOGRAD_NUM_THREADS=1) and once at 4
# threads. The two runs must both pass — the parallel compute layer's
# contract is that pool size never changes results (bit-identical; see
# docs/ARCHITECTURE.md and tests/integration/parallel_determinism_test.cc).
# A third pass exercises the observability layer end to end: one traced +
# metered training run (MOCOGRAD_TRACE / MOCOGRAD_METRICS set) whose
# emitted Chrome-trace JSON and metrics JSONL must parse
# (docs/OBSERVABILITY.md). A fourth pass enforces the SIMD determinism
# contract (docs/SIMD.md): the suite must also pass with the hardware
# backend disabled (MOCOGRAD_SIMD=0), and a training run's stdout must be
# byte-identical with the backend on and off. A fifth pass stresses the
# GEMM macro-kernel's cache blocking (docs/SIMD.md): the suite must pass
# with deliberately tiny, ragged block sizes (MOCOGRAD_GEMM_BLOCK) on both
# the hardware and scalar backends — blocking is a loop-order choice, never
# a results choice.
#
# Usage: tools/run_tests.sh [build-dir]   (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j

for threads in 1 4; do
  echo "==> ctest with MOCOGRAD_NUM_THREADS=$threads"
  (cd "$build_dir" && MOCOGRAD_NUM_THREADS=$threads ctest --output-on-failure -j)
done

echo "==> traced run: example_quickstart with MOCOGRAD_TRACE/MOCOGRAD_METRICS"
trace_json="$build_dir/obs_smoke_trace.json"
metrics_jsonl="$build_dir/obs_smoke_metrics.jsonl"
rm -f "$trace_json" "$metrics_jsonl"
MOCOGRAD_TRACE="$trace_json" MOCOGRAD_METRICS="$metrics_jsonl" \
  "$build_dir/examples/example_quickstart" > /dev/null
test -s "$trace_json" || { echo "FAIL: no trace written to $trace_json"; exit 1; }
test -s "$metrics_jsonl" || { echo "FAIL: no metrics written to $metrics_jsonl"; exit 1; }
"$build_dir/tools/validate_json" "$trace_json"
"$build_dir/tools/validate_json" --jsonl "$metrics_jsonl"

echo "==> ctest with MOCOGRAD_SIMD=0 (lane-blocked scalar fallback)"
(cd "$build_dir" && MOCOGRAD_SIMD=0 ctest --output-on-failure -j)

echo "==> ctest with tiny MOCOGRAD_GEMM_BLOCK=10,24,32 (SIMD on and off)"
(cd "$build_dir" && MOCOGRAD_GEMM_BLOCK=10,24,32 ctest --output-on-failure -j)
(cd "$build_dir" && MOCOGRAD_GEMM_BLOCK=10,24,32 MOCOGRAD_SIMD=0 \
  ctest --output-on-failure -j)

echo "==> SIMD on/off diff: example_quickstart stdout must be byte-identical"
simd_on="$build_dir/simd_smoke_on.txt"
simd_off="$build_dir/simd_smoke_off.txt"
"$build_dir/examples/example_quickstart" > "$simd_on"
MOCOGRAD_SIMD=0 "$build_dir/examples/example_quickstart" > "$simd_off"
diff "$simd_on" "$simd_off" || {
  echo "FAIL: training output differs between MOCOGRAD_SIMD=1 and =0"; exit 1;
}

echo "OK: tests pass at pool sizes 1 and 4, with MOCOGRAD_SIMD=0, and" \
  "under tiny GEMM blocking; traced artifacts parse; SIMD on/off" \
  "training output is byte-identical"
