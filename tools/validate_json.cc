// Validates that stdin (or each file argument) is well-formed JSON — or,
// with --jsonl, that every non-empty line is. With --telemetry, each line
// is additionally checked against the conflict-telemetry schema emitted by
// obs::TelemetrySink (docs/OBSERVABILITY.md "Conflict telemetry"): typed
// records, required keys, finite floats, and per-run monotone step ids.
// With --serve, each file is checked against the serving-benchmark schema
// written by bench/bench_serve.cc (docs/SERVING.md): non-empty results,
// positive finite QPS, ordered finite latency percentiles.
// Exit 0 iff everything validates; the first error on each file is
// reported. Used by run_tests.sh and the mg_report CI smoke to check the
// Chrome-trace / metrics / telemetry files the observability layer emits.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using mocograd::Result;
using mocograd::Status;
using mocograd::obs::JsonValue;

std::string ReadAll(std::FILE* f) {
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  return out;
}

// --- Telemetry schema ------------------------------------------------------

// Appends "key" context to an error message.
Status Bad(const std::string& what) {
  return Status::InvalidArgument("telemetry schema: " + what);
}

bool IsInt(double v) { return std::isfinite(v) && v == std::floor(v); }

// Requires `key` to be an array of finite numbers (no nulls — the writer
// serializes non-finite values as null, so a null here means a NaN/Inf
// leaked into the training run). `min_len` guards non-empty arrays.
Status CheckFiniteArray(const JsonValue& obj, const std::string& key,
                        size_t min_len) {
  const JsonValue* arr = obj.Find(key);
  if (arr == nullptr) return Status::Ok();
  if (!arr->is_array()) return Bad("\"" + key + "\" must be an array");
  if (arr->items.size() < min_len) {
    return Bad("\"" + key + "\" must have at least " +
               std::to_string(min_len) + " entries");
  }
  for (const JsonValue& v : arr->items) {
    if (!v.is_number() || !std::isfinite(v.number_value)) {
      return Bad("\"" + key + "\" contains a non-finite entry");
    }
  }
  return Status::Ok();
}

Status CheckStepRecord(const JsonValue& rec) {
  const JsonValue* step = rec.Find("step");
  if (step == nullptr || !step->is_number() || !IsInt(step->number_value) ||
      step->number_value < 0) {
    return Bad("\"step\" must be a non-negative integer");
  }
  const JsonValue* method = rec.Find("method");
  if (method == nullptr || !method->is_string() ||
      method->string_value.empty()) {
    return Bad("\"method\" must be a non-empty string");
  }
  if (rec.Find("losses") == nullptr) return Bad("\"losses\" is required");
  Status s = CheckFiniteArray(rec, "losses", 1);
  if (!s.ok()) return s;
  const size_t k = rec.Find("losses")->items.size();
  for (const char* key : {"task_weights", "grad_norms", "momentum_norms"}) {
    s = CheckFiniteArray(rec, key, 0);
    if (!s.ok()) return s;
    const JsonValue* arr = rec.Find(key);
    if (arr != nullptr && arr->items.size() != k) {
      return Bad(std::string("\"") + key + "\" length must match \"losses\"");
    }
  }

  const JsonValue* gcd = rec.Find("gcd");
  if (gcd == nullptr || !gcd->is_object()) {
    return Bad("\"gcd\" must be an object");
  }
  for (const char* key : {"mean", "max", "conflicting_pairs", "pairs"}) {
    const JsonValue* v = gcd->Find(key);
    if (v == nullptr || !v->is_number() || !std::isfinite(v->number_value)) {
      return Bad(std::string("\"gcd.") + key + "\" must be a finite number");
    }
  }
  const double conflicting = gcd->NumberOr("conflicting_pairs", 0.0);
  const double pairs = gcd->NumberOr("pairs", 0.0);
  if (!IsInt(conflicting) || !IsInt(pairs) || conflicting < 0 || pairs < 0 ||
      conflicting > pairs) {
    return Bad("\"gcd\" pair counts must satisfy 0 <= conflicting <= pairs");
  }

  const JsonValue* cosines = rec.Find("cosines");
  if (cosines != nullptr) {
    if (!cosines->is_array()) return Bad("\"cosines\" must be an array");
    for (const JsonValue& triple : cosines->items) {
      if (!triple.is_array() || triple.items.size() != 3 ||
          !triple.items[0].is_number() || !triple.items[1].is_number() ||
          !triple.items[2].is_number()) {
        return Bad("\"cosines\" entries must be [i, j, cos] number triples");
      }
      const double i = triple.items[0].number_value;
      const double j = triple.items[1].number_value;
      const double cos = triple.items[2].number_value;
      if (!IsInt(i) || !IsInt(j) || i < 0 || j <= i ||
          j >= static_cast<double>(k)) {
        return Bad("\"cosines\" indices must satisfy 0 <= i < j < K");
      }
      if (!std::isfinite(cos) || cos < -1.000001 || cos > 1.000001) {
        return Bad("\"cosines\" values must be finite in [-1, 1]");
      }
    }
  }

  const JsonValue* decisions = rec.Find("decisions");
  if (decisions != nullptr) {
    if (!decisions->is_array()) return Bad("\"decisions\" must be an array");
    for (const JsonValue& d : decisions->items) {
      if (!d.is_object()) return Bad("\"decisions\" entries must be objects");
      const JsonValue* di = d.Find("i");
      const JsonValue* dj = d.Find("j");
      const JsonValue* mag = d.Find("mag");
      const JsonValue* acted = d.Find("acted");
      const JsonValue* cos = d.Find("cos");
      if (di == nullptr || !di->is_number() || !IsInt(di->number_value) ||
          dj == nullptr || !dj->is_number() || !IsInt(dj->number_value)) {
        return Bad("decision \"i\"/\"j\" must be integers");
      }
      if (mag == nullptr || !mag->is_number() ||
          !std::isfinite(mag->number_value)) {
        return Bad("decision \"mag\" must be a finite number");
      }
      if (acted == nullptr || !acted->is_bool()) {
        return Bad("decision \"acted\" must be a bool");
      }
      // cos is number-or-null: null marks "raw cosine unknown" (methods
      // that test against an already-projected gradient).
      if (cos != nullptr && !cos->is_null() && !cos->is_number()) {
        return Bad("decision \"cos\" must be a number or null");
      }
    }
  }

  const JsonValue* phase = rec.Find("phase");
  if (phase != nullptr) {
    if (!phase->is_object()) return Bad("\"phase\" must be an object");
    for (const auto& [key, v] : phase->members) {
      if (!v.is_number() || !std::isfinite(v.number_value) ||
          v.number_value < 0) {
        return Bad("\"phase." + key +
                   "\" must be a finite non-negative number of seconds");
      }
    }
  }
  return Status::Ok();
}

Status CheckWatchdogRecord(const JsonValue& rec) {
  const JsonValue* step = rec.Find("step");
  if (step == nullptr || !step->is_number() || !IsInt(step->number_value) ||
      step->number_value < 0) {
    return Bad("\"step\" must be a non-negative integer");
  }
  const JsonValue* kind = rec.Find("kind");
  if (kind == nullptr || !kind->is_string() || kind->string_value.empty()) {
    return Bad("\"kind\" must be a non-empty string");
  }
  const JsonValue* task = rec.Find("task");
  if (task == nullptr || !task->is_number() || !IsInt(task->number_value) ||
      task->number_value < -1) {
    return Bad("\"task\" must be an integer >= -1");
  }
  const JsonValue* value = rec.Find("value");
  if (value == nullptr || (!value->is_null() && !value->is_number())) {
    return Bad("\"value\" must be a number or null");
  }
  const JsonValue* threshold = rec.Find("threshold");
  if (threshold == nullptr || !threshold->is_number()) {
    return Bad("\"threshold\" must be a number");
  }
  return Status::Ok();
}

// --- Serving-benchmark schema ----------------------------------------------

Status BadServe(const std::string& what) {
  return Status::InvalidArgument("serve schema: " + what);
}

// Requires `key` to be a finite number in [lo, hi]; integral if `integral`.
Status CheckServeNumber(const JsonValue& rec, const char* key, double lo,
                        double hi, bool integral) {
  const JsonValue* v = rec.Find(key);
  if (v == nullptr || !v->is_number() || !std::isfinite(v->number_value)) {
    return BadServe(std::string("\"") + key + "\" must be a finite number");
  }
  if (v->number_value < lo || v->number_value > hi) {
    return BadServe(std::string("\"") + key + "\" out of range");
  }
  if (integral && !IsInt(v->number_value)) {
    return BadServe(std::string("\"") + key + "\" must be an integer");
  }
  return Status::Ok();
}

// Checks a BENCH_serve.json document written by bench/bench_serve.cc
// (docs/SERVING.md "The traffic harness"): the active ISA tier, a
// non-empty "results" array whose rows carry identifying strings, a
// serving precision, positive finite throughput, ordered finite latency
// percentiles, and a batcher occupancy in (0, 1], plus a non-empty
// "precision_compare" array recording the fp32-vs-bf16 throughput and
// output-error comparison (docs/SERVING.md "Reduced precision").
Status CheckServeDocument(const JsonValue& doc) {
  if (!doc.is_object()) return BadServe("document must be an object");
  const JsonValue* tier = doc.Find("isa_tier");
  if (tier == nullptr || !tier->is_string() || tier->string_value.empty()) {
    return BadServe("\"isa_tier\" must be a non-empty string");
  }
  const JsonValue* results = doc.Find("results");
  if (results == nullptr || !results->is_array()) {
    return BadServe("\"results\" must be an array");
  }
  if (results->items.empty()) {
    return BadServe("\"results\" must be non-empty");
  }
  for (const JsonValue& rec : results->items) {
    if (!rec.is_object()) return BadServe("results entries must be objects");
    for (const char* key : {"model", "dataset", "mode"}) {
      const JsonValue* v = rec.Find(key);
      if (v == nullptr || !v->is_string() || v->string_value.empty()) {
        return BadServe(std::string("\"") + key +
                        "\" must be a non-empty string");
      }
    }
    const JsonValue* precision = rec.Find("precision");
    if (precision == nullptr || !precision->is_string() ||
        (precision->string_value != "fp32" &&
         precision->string_value != "bf16")) {
      return BadServe("\"precision\" must be \"fp32\" or \"bf16\"");
    }
    constexpr double kInf = std::numeric_limits<double>::max();
    Status s = CheckServeNumber(rec, "qps", 1e-9, kInf, false);
    if (!s.ok()) return s;
    for (const char* key : {"p50_us", "p95_us", "p99_us"}) {
      s = CheckServeNumber(rec, key, 0.0, kInf, false);
      if (!s.ok()) return s;
    }
    const double p50 = rec.Find("p50_us")->number_value;
    const double p99 = rec.Find("p99_us")->number_value;
    if (p50 > p99) return BadServe("\"p50_us\" must not exceed \"p99_us\"");
    s = CheckServeNumber(rec, "batch", 1.0, kInf, true);
    if (!s.ok()) return s;
    s = CheckServeNumber(rec, "threads", 1.0, kInf, true);
    if (!s.ok()) return s;
    s = CheckServeNumber(rec, "requests", 1.0, kInf, true);
    if (!s.ok()) return s;
    s = CheckServeNumber(rec, "occupancy", 1e-9, 1.0, false);
    if (!s.ok()) return s;
  }

  const JsonValue* cmp = doc.Find("precision_compare");
  if (cmp == nullptr || !cmp->is_array()) {
    return BadServe("\"precision_compare\" must be an array");
  }
  if (cmp->items.empty()) {
    return BadServe("\"precision_compare\" must be non-empty");
  }
  for (const JsonValue& rec : cmp->items) {
    if (!rec.is_object()) {
      return BadServe("precision_compare entries must be objects");
    }
    for (const char* key : {"model", "dataset"}) {
      const JsonValue* v = rec.Find(key);
      if (v == nullptr || !v->is_string() || v->string_value.empty()) {
        return BadServe(std::string("\"") + key +
                        "\" must be a non-empty string");
      }
    }
    constexpr double kInf = std::numeric_limits<double>::max();
    for (const char* key : {"qps_fp32", "qps_bf16", "speedup_bf16"}) {
      Status s = CheckServeNumber(rec, key, 1e-9, kInf, false);
      if (!s.ok()) return s;
    }
    // The bf16 deviation is a few weight-rounding ulps through two small
    // layers: zero means the bf16 path silently served fp32 weights, and
    // anything near 1 means the storage rounding corrupted the model.
    Status s = CheckServeNumber(rec, "max_abs_error",
                                std::numeric_limits<double>::min(),
                                0.999999, false);
    if (!s.ok()) return s;
    s = CheckServeNumber(rec, "requests", 1.0, kInf, true);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status CheckServeText(const std::string& text) {
  Result<JsonValue> parsed = mocograd::obs::ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  return CheckServeDocument(parsed.value());
}

// Per-file telemetry state: step ids must be monotone within a run; a
// record with step 0 starts a new run (several TrainAndEvaluate calls may
// append to one file).
struct TelemetryState {
  double prev_step = -1.0;
};

Status CheckTelemetryLine(const std::string& line, TelemetryState* state) {
  Result<JsonValue> parsed = mocograd::obs::ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& rec = parsed.value();
  if (!rec.is_object()) return Bad("record must be an object");
  const JsonValue* type = rec.Find("type");
  if (type == nullptr || !type->is_string()) {
    return Bad("\"type\" must be a string");
  }
  if (type->string_value == "step") {
    Status s = CheckStepRecord(rec);
    if (!s.ok()) return s;
    const double step = rec.Find("step")->number_value;
    if (step == 0.0) {
      state->prev_step = 0.0;  // new run
    } else if (step <= state->prev_step) {
      return Bad("step ids must be strictly increasing within a run");
    } else {
      state->prev_step = step;
    }
    return Status::Ok();
  }
  if (type->string_value == "watchdog") return CheckWatchdogRecord(rec);
  return Bad("unknown record type: \"" + type->string_value + "\"");
}

// --- Driver ----------------------------------------------------------------

enum class Mode { kJson, kJsonl, kTelemetry, kServe };

bool Validate(const std::string& name, const std::string& text, Mode mode) {
  if (mode == Mode::kJson || mode == Mode::kServe) {
    Status s = mode == Mode::kServe ? CheckServeText(text)
                                    : mocograd::obs::ValidateJson(text);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), s.ToString().c_str());
      return false;
    }
    return true;
  }
  TelemetryState state;
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    ++line_no;
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Status s = mode == Mode::kTelemetry
                   ? CheckTelemetryLine(line, &state)
                   : mocograd::obs::ValidateJson(line);
    if (!s.ok()) {
      std::fprintf(stderr, "%s:%d: %s\n", name.c_str(), line_no,
                   s.ToString().c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Mode mode = Mode::kJson;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jsonl") == 0) {
      mode = Mode::kJsonl;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      mode = Mode::kTelemetry;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      mode = Mode::kServe;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: validate_json [--jsonl|--telemetry|--serve] [file...]\n"
          "Checks files (or stdin) for JSON well-formedness; --telemetry\n"
          "additionally enforces the conflict-telemetry JSONL schema;\n"
          "--serve enforces the BENCH_serve.json schema.\n");
      return 0;
    } else {
      paths.push_back(argv[i]);
    }
  }

  bool ok = true;
  if (paths.empty()) {
    ok = Validate("<stdin>", ReadAll(stdin), mode);
  } else {
    for (const char* path : paths) {
      std::FILE* f = std::fopen(path, "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "%s: cannot open\n", path);
        ok = false;
        continue;
      }
      const std::string text = ReadAll(f);
      std::fclose(f);
      ok = Validate(path, text, mode) && ok;
    }
  }
  return ok ? 0 : 1;
}
