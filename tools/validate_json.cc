// Validates that stdin (or each file argument) is well-formed JSON — or,
// with --jsonl, that every non-empty line is. Exit 0 iff everything parses;
// the first error is reported with its byte offset. Used by run_tests.sh to
// check the Chrome-trace and metrics files the observability layer emits.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

std::string ReadAll(std::FILE* f) {
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  return out;
}

bool Validate(const std::string& name, const std::string& text, bool jsonl) {
  using mocograd::Status;
  if (!jsonl) {
    Status s = mocograd::obs::ValidateJson(text);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(), s.ToString().c_str());
      return false;
    }
    return true;
  }
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    ++line_no;
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Status s = mocograd::obs::ValidateJson(line);
    if (!s.ok()) {
      std::fprintf(stderr, "%s:%d: %s\n", name.c_str(), line_no,
                   s.ToString().c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool jsonl = false;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jsonl") == 0) {
      jsonl = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: validate_json [--jsonl] [file...]\n"
                  "Checks files (or stdin) for JSON well-formedness.\n");
      return 0;
    } else {
      paths.push_back(argv[i]);
    }
  }

  bool ok = true;
  if (paths.empty()) {
    ok = Validate("<stdin>", ReadAll(stdin), jsonl);
  } else {
    for (const char* path : paths) {
      std::FILE* f = std::fopen(path, "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "%s: cannot open\n", path);
        ok = false;
        continue;
      }
      const std::string text = ReadAll(f);
      std::fclose(f);
      ok = Validate(path, text, jsonl) && ok;
    }
  }
  return ok ? 0 : 1;
}
